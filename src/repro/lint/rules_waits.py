"""RPR016 — unbounded waits in the execution fabric.

The chaos contract of :mod:`repro.parallel` is that no failure mode can
hang the campaign: worker deaths surface as :class:`WorkerCrashError`,
overdue cells are killed by the watchdog, and stalls are detected
through heartbeats.  All of that supervision runs in the dispatch loop —
and an *unbounded* blocking call in that loop (or anywhere in the
experiment layers above it) suspends the supervisor itself, turning a
single lost worker into a silently hung process that no deadline can
reach.

Inside ``repro.parallel`` and ``repro.experiments`` this rule flags the
four blocking primitives whose defaults wait forever when their owner
never delivers:

- ``future.result()`` / ``future.exception()`` on a pool future without
  a ``timeout`` — a future whose worker was SIGKILLed may never resolve
  until the executor notices, and the dispatch loop must stay free to
  poll the watchdog (use ``result(timeout=0)`` after ``wait()``);
- ``queue.get()`` without ``timeout=`` (or ``block=False``) — the
  producer may be dead;
- ``lock.acquire()`` without ``timeout=`` (or ``blocking=False``) — the
  holder may be dead;
- ``process.join()`` / ``thread.join()`` without a timeout — the child
  may never exit.

Receivers are resolved by binding, not by name: a name assigned from
``Process(...)``/``Thread(...)``, a queue or lock constructor, or a
``.submit(...)`` call in the same scope is tracked, so ``str.join`` and
``dict.get`` never trip the rule.  Waits that are provably bounded or
non-blocking (``timeout=``, ``block=False``, ``blocking=False``,
``get_nowait``) pass.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, register_rule

__all__ = ["UnboundedWaitRule"]

#: Packages whose blocking calls must carry timeouts (the dispatch loop
#: and everything that drives it).
_SCOPES = ("repro.parallel", "repro.experiments")

#: Constructor name -> kind of waitable the binding becomes.
_WAITABLE_FACTORIES = {
    "Process": "process",
    "Thread": "thread",
    "Queue": "queue",
    "SimpleQueue": "queue",
    "JoinableQueue": "queue",
    "LifoQueue": "queue",
    "PriorityQueue": "queue",
    "Lock": "lock",
    "RLock": "lock",
    "Condition": "lock",
    "Semaphore": "lock",
    "BoundedSemaphore": "lock",
}

#: Method -> kinds it blocks on, with the escape hatches that bound it.
_BLOCKING_METHODS = {
    "result": ("future",),
    "exception": ("future",),
    "get": ("queue",),
    "acquire": ("lock",),
    "join": ("process", "thread"),
}

_FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _call_tail(node: ast.Call) -> str | None:
    """Last component of the callee's (dotted) name, if it has one."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_false(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is False


def _is_bounded(method: str, call: ast.Call) -> bool:
    """Does this blocking call carry a timeout or opt out of blocking?"""
    for keyword in call.keywords:
        if keyword.arg == "timeout":
            return True
        if keyword.arg in ("block", "blocking") and _is_false(keyword.value):
            return True
    if method in ("result", "exception", "join"):
        # First positional parameter is the timeout itself.
        return bool(call.args)
    if method == "get" and call.args and _is_false(call.args[0]):
        return True  # Queue.get(False) raises Empty instead of waiting.
    if method == "acquire" and call.args and _is_false(call.args[0]):
        return True  # Lock.acquire(False) polls instead of waiting.
    return False


def _bindings_of(root: ast.AST) -> dict[str, str]:
    """``{name: waitable kind}`` for names bound in ``root``'s scope."""
    bindings: dict[str, str] = {}

    def bind(target: ast.expr, kind: str) -> None:
        if isinstance(target, ast.Name):
            bindings[target.id] = kind

    def kind_of(value: ast.expr) -> str | None:
        if not isinstance(value, ast.Call):
            return None
        tail = _call_tail(value)
        if tail in _WAITABLE_FACTORIES:
            return _WAITABLE_FACTORIES[tail]
        if tail == "submit" and isinstance(value.func, ast.Attribute):
            return "future"
        return None

    for node in ast.walk(root):
        if isinstance(node, ast.Assign):
            kind = kind_of(node.value)
            if kind is not None:
                for target in node.targets:
                    bind(target, kind)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            kind = kind_of(node.value)
            if kind is not None:
                bind(node.target, kind)
        elif isinstance(node, ast.withitem):
            kind = kind_of(node.context_expr)
            if kind is not None and node.optional_vars is not None:
                bind(node.optional_vars, kind)
    return bindings


@register_rule
class UnboundedWaitRule(Rule):
    rule_id = "RPR016"
    name = "unbounded-wait"
    description = (
        "blocking waits in repro.parallel/repro.experiments — "
        "future.result()/exception(), Queue.get, lock.acquire and "
        "Process/Thread.join — must carry a timeout (or opt out of "
        "blocking), so a dead counterpart cannot hang the supervisor"
    )
    rationale = (
        "The dispatch loop is also the watchdog: an unbounded wait on a "
        "future whose worker was SIGKILLed, a queue whose producer died, "
        "or a lock whose holder crashed suspends the very code that is "
        "supposed to detect and recover from those failures, turning a "
        "single lost process into a hung campaign no deadline can reach."
    )
    example = (
        "future = pool.submit(cell_worker, payload)\n"
        "value = future.result()      # RPR016: waits forever on a dead worker\n"
        "value = future.result(timeout=0)   # ok: poll after wait()\n"
        "item = inbox.get()           # RPR016: producer may be gone\n"
        "item = inbox.get(timeout=5)  # ok\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(_SCOPES):
            return
        # Disjoint scopes: each top-level function (module- or class-body,
        # nested defs included — they close over the enclosing bindings)
        # and the remaining module-level statements as one scope.
        scopes: list[list[ast.AST]] = []
        module_stmts: list[ast.AST] = []
        for stmt in ctx.tree.body:
            if isinstance(stmt, _FunctionDef):
                scopes.append([stmt])
            elif isinstance(stmt, ast.ClassDef):
                scopes.extend(
                    [item] for item in stmt.body if isinstance(item, _FunctionDef)
                )
            else:
                module_stmts.append(stmt)
        scopes.append(module_stmts)
        for roots in scopes:
            bindings: dict[str, str] = {}
            for root in roots:
                bindings.update(_bindings_of(root))
            for node in (n for root in roots for n in ast.walk(root)):
                if not isinstance(node, ast.Call):
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                method = node.func.attr
                kinds = _BLOCKING_METHODS.get(method)
                if kinds is None or _is_bounded(method, node):
                    continue
                receiver = node.func.value
                if isinstance(receiver, ast.Name):
                    kind = bindings.get(receiver.id)
                    if kind not in kinds:
                        continue
                    owner = f"'{receiver.id}' ({kind})"
                elif (
                    isinstance(receiver, ast.Call)
                    and _call_tail(receiver) == "submit"
                    and isinstance(receiver.func, ast.Attribute)
                    and "future" in kinds
                ):
                    owner = "the future returned by submit()"
                else:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"unbounded {method}() on {owner} can hang the "
                    f"supervisor if its counterpart died; pass a timeout "
                    f"(or opt out of blocking)",
                )
