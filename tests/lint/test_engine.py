"""Engine plumbing: config, file collection, parallelism, reporters, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import cli as repro_cli
from repro.lint import (
    Finding,
    LintConfig,
    LintEngine,
    load_config,
    render_json,
    render_text,
)
from repro.lint.cli import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"

BAD_FIXTURES = [
    "rpr001_bad.py",
    "proj/repro/discovery/rpr002_bad.py",
    "rpr003_bad.py",
    "proj/repro/autograd/rpr004_bad.py",
    "rpr005_bad.py",
    "rpr006_bad.py",
    "rpr010_bad.py",
    "rpr011_bad.py",
    "proj/repro/discovery/rpr012_bad.py",
    "rpr013_bad.py",
    "rpr014_bad.py",
]


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def test_load_config_resolves_relative_paths(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\npaths = ["src"]\ndisable = ["RPR006"]\n'
        'exclude = ["*/gen/*"]\n',
        encoding="utf-8",
    )
    config = load_config(pyproject=tmp_path / "pyproject.toml")
    assert config.paths == (str(tmp_path / "src"),)
    assert config.disable == ("RPR006",)
    assert config.exclude == ("*/gen/*",)


def test_load_config_walks_up_from_start(tmp_path):
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-lint]\ndisable = ["RPR001"]\n', encoding="utf-8"
    )
    config = load_config(start=nested)
    assert config.disable == ("RPR001",)
    assert config.source == str(tmp_path / "pyproject.toml")


def test_load_config_rejects_unknown_keys(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.repro-lint]\nbogus = 1\n", encoding="utf-8"
    )
    with pytest.raises(ValueError, match="bogus"):
        load_config(pyproject=tmp_path / "pyproject.toml")


def test_missing_table_yields_defaults(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    assert load_config(pyproject=tmp_path / "pyproject.toml") == LintConfig(
        source=str(tmp_path / "pyproject.toml")
    )


def test_merged_with_cli_narrows_but_never_widens():
    config = LintConfig(disable=("RPR001",), exclude=("a",))
    merged = config.merged_with_cli(
        enable=("RPR002",), disable=("RPR003",), exclude=("b",)
    )
    assert merged.enable == ("RPR002",)
    assert merged.disable == ("RPR001", "RPR003")
    assert merged.exclude == ("a", "b")


def test_engine_rejects_unknown_rule_ids():
    with pytest.raises(ValueError, match="RPR999"):
        LintEngine(LintConfig(enable=("RPR999",)))


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
def test_syntax_error_reports_rpr000():
    findings = LintEngine().lint_source("def broken(:\n", path="x.py")
    assert [finding.rule_id for finding in findings] == ["RPR000"]
    assert "syntax error" in findings[0].message


def test_collect_files_applies_exclude_patterns():
    engine = LintEngine(LintConfig(exclude=("*/proj/*",)))
    files = engine.collect_files([FIXTURES])
    names = {file.name for file in files}
    assert "rpr001_bad.py" in names
    assert not any("proj" in file.parts for file in files)


def test_collect_files_rejects_non_python_paths(tmp_path):
    (tmp_path / "notes.txt").write_text("hi", encoding="utf-8")
    with pytest.raises(FileNotFoundError):
        LintEngine().collect_files([tmp_path / "notes.txt"])


def test_parallel_and_serial_scans_agree():
    engine = LintEngine()
    serial = engine.lint_paths([FIXTURES], jobs=1)
    parallel = engine.lint_paths([FIXTURES], jobs=4)
    assert serial == parallel
    assert serial, "the bad fixtures must produce findings"


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def test_render_text_is_compiler_style():
    finding = Finding("RPR001", "x.py", 3, 1, "msg")
    out = render_text([finding], checked_files=2)
    assert "x.py:3:1: RPR001 msg" in out
    assert out.endswith("1 finding in 1 file (2 files checked)")


def test_render_json_round_trips():
    finding = Finding("RPR001", "x.py", 3, 1, "msg")
    payload = json.loads(render_json([finding], checked_files=1))
    assert payload["count"] == 1
    assert payload["checked_files"] == 1
    assert payload["findings"][0]["rule_id"] == "RPR001"
    assert payload["findings"][0]["line"] == 3


# ----------------------------------------------------------------------
# Command-line interface
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fixture", BAD_FIXTURES)
def test_cli_exits_nonzero_on_bad_fixture(fixture, capsys):
    assert lint_main([str(FIXTURES / fixture), "--no-config"]) == 1
    assert "RPR" in capsys.readouterr().out


def test_cli_exits_zero_on_clean_fixture(capsys):
    assert lint_main([str(FIXTURES / "rpr001_clean.py"), "--no-config"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_json_format(capsys):
    code = lint_main(
        [str(FIXTURES / "rpr005_bad.py"), "--no-config", "--format", "json"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 2


def test_cli_disable_silences_a_rule(capsys):
    code = lint_main(
        [str(FIXTURES / "rpr003_bad.py"), "--no-config", "--disable", "RPR003"]
    )
    assert code == 0


def test_cli_unknown_rule_id_is_a_usage_error(capsys):
    code = lint_main(
        [str(FIXTURES / "rpr003_bad.py"), "--no-config", "--enable", "RPR999"]
    )
    assert code == 2
    assert "RPR999" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006"):
        assert rule_id in out


def test_repro_cli_forwards_lint_arguments(capsys):
    code = repro_cli.main(
        ["lint", str(FIXTURES / "rpr001_clean.py"), "--no-config"]
    )
    assert code == 0
    code = repro_cli.main(
        ["lint", "--", str(FIXTURES / "rpr001_bad.py"), "--no-config"]
    )
    assert code == 1
