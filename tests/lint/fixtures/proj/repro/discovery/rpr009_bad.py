"""Bad fixture for RPR009: raw clocks and off-protocol telemetry."""

import time
from time import perf_counter as tick


def time_generation(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def time_budget(fn):
    start = tick()
    fn()
    cpu = time.process_time()
    return tick() - start, cpu


class LooseResult:
    def __init__(self, facts):
        self.facts = facts

    def summary(self):
        return {"facts_count": len(self.facts)}
