"""Domain-aware static analysis for the repro codebase.

The paper's experimental claims rest on invariants no framework enforces
for us: deterministic sampling (every strategy draws from seeded
``np.random.Generator`` streams) and a correct, lean autodiff tape.  This
package is an AST-based analyzer with a rule registry, inline
``# lint: disable=RPRxxx`` suppressions, and text/JSON/SARIF reporters —
run as ``python -m repro.lint``, ``repro lint``, or the ``repro-lint``
console script.

The engine runs in two passes.  Pass 1 analyses each file independently
(rules RPR001–RPR009) and extracts a per-module fact record; records
and findings are cached on disk by content digest.  Pass 2 assembles
the records into a whole-program :class:`~repro.lint.callgraph.ProjectIndex`
with a resolved call graph and runs the inter-procedural rules
(RPR010–RPR014) over it.

Rules
-----

========  ==========================================================
RPR001    no global-RNG calls — require explicit ``np.random.Generator``
RPR002    tape hygiene — inference modules score under ``no_grad``
RPR003    no in-place ``Tensor.data`` mutation outside optim/modules
RPR004    backward-closure completeness (``_unbroadcast`` / guards)
RPR005    ``__all__`` ↔ public-def consistency
RPR006    float64 dtype hygiene, mutable defaults, bare ``except``
RPR007    resilience — no swallowed broad excepts; atomic binary writes
RPR008    sparse-grad safety — dense ``.grad`` reads in kge/autograd
          must handle ``SparseGrad``, densify, or ``flush()`` first
RPR009    observability — no raw ``time.*`` clocks in
          kge/discovery/experiments (use ``repro.obs.span``);
          ``summary()``-bearing result classes speak ``Reportable``
RPR010    determinism taint — unseeded RNG / unordered iteration
          reachable from the pipeline entry points (whole-program)
RPR011    concurrency safety — shared state mutated without the
          owning lock in thread-facing code (whole-program)
RPR012    Reportable drift — ``summary()`` keys off the canonical
          ``*_seconds``/``*_count`` vocabulary (whole-program)
RPR013    export integrity — unresolved project imports, broken
          ``__all__`` re-export chains, shadowed bindings (whole-program)
RPR014    exception contracts — broad excepts that swallow typed
          project errors raised in the try body (whole-program)
RPR015    process-pool safety — spawned workers must be module-level
          picklable functions, re-seed via rng/seed or spawn_stream,
          and not read module-global RNG streams or file handles
RPR016    unbounded waits — blocking primitives in
          ``repro.parallel``/``repro.experiments`` (``future.result``,
          ``Queue.get``, ``lock.acquire``, ``Process.join``) must carry
          a timeout so a dead counterpart cannot hang the supervisor
RPR017    dense materialisation — ``.toarray()``/``.todense()`` and
          square ``(x, x)`` numpy allocations in ``repro.kg``/
          ``repro.discovery`` (outside the backend-internal
          storage/blocked modules) re-introduce the Θ(N²) footprint
          the out-of-core substrate exists to avoid
RPR018    serve handler hygiene — in ``repro.serve``, no unbounded
          blocking waits (``Event``/``Condition``/``Barrier.wait`` and
          the RPR016 primitives need timeouts), no mutation of
          module-global state from handler code, and no hand-rolled
          ``json.dumps`` payloads outside the versioned schema types
========  ==========================================================

The tier-1 test ``tests/lint/test_self_clean.py`` runs the analyzer over
``src/repro`` and fails on any unsuppressed finding, so these invariants
hold on every future change.
"""

from .baseline import (
    fingerprint,
    load_baseline,
    match_baseline,
    render_baseline,
    write_baseline,
)
from .cache import CACHE_VERSION, LintCache, default_cache_dir
from .callgraph import CallGraph, ProjectIndex, node_key, split_node
from .config import LintConfig, find_pyproject, load_config
from .engine import LintEngine, LintRun
from .explain import render_rules_doc
from .findings import PARSE_ERROR_ID, Finding
from .fixes import FixResult, fix_all_entries, fix_file, render_diff
from .index import ModuleInfo, build_module_info
from .reporters import render_json, render_sarif, render_text
from .rules import (
    ModuleContext,
    ProjectRule,
    Rule,
    all_rules,
    derive_module_name,
    get_rule,
    local_rules,
    numpy_aliases,
    project_rules,
    register_rule,
)
from .suppress import filter_suppressed, suppressed_rule_ids

# Importing the rule modules populates the registry.
from . import (
    rules_api,
    rules_concurrency,
    rules_dense,
    rules_determinism,
    rules_exceptions,
    rules_exports,
    rules_hygiene,
    rules_obs,
    rules_parallel,
    rules_reportable,
    rules_resilience,
    rules_rng,
    rules_serve,
    rules_sparse,
    rules_tape,
    rules_tensor,
    rules_waits,
)

__all__ = [
    "Finding",
    "PARSE_ERROR_ID",
    "Rule",
    "ProjectRule",
    "ModuleContext",
    "ModuleInfo",
    "ProjectIndex",
    "CallGraph",
    "LintRun",
    "LintCache",
    "CACHE_VERSION",
    "FixResult",
    "register_rule",
    "all_rules",
    "local_rules",
    "project_rules",
    "get_rule",
    "derive_module_name",
    "numpy_aliases",
    "node_key",
    "split_node",
    "build_module_info",
    "default_cache_dir",
    "LintConfig",
    "find_pyproject",
    "load_config",
    "LintEngine",
    "render_text",
    "render_json",
    "render_sarif",
    "render_rules_doc",
    "render_diff",
    "render_baseline",
    "fingerprint",
    "load_baseline",
    "match_baseline",
    "write_baseline",
    "fix_all_entries",
    "fix_file",
    "filter_suppressed",
    "suppressed_rule_ids",
    "rules_api",
    "rules_concurrency",
    "rules_dense",
    "rules_determinism",
    "rules_exceptions",
    "rules_exports",
    "rules_hygiene",
    "rules_obs",
    "rules_parallel",
    "rules_reportable",
    "rules_resilience",
    "rules_rng",
    "rules_serve",
    "rules_sparse",
    "rules_tape",
    "rules_tensor",
    "rules_waits",
]
