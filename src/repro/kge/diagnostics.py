"""Embedding-model diagnostics: popularity bias (paper §4.2.2).

The paper hypothesises that some model/strategy pairings (notably
ENTITY FREQUENCY + ConvE) benefit from *popularity bias* — "the score of
triples containing popular entities ... is amplified way more than
necessary", meaning a model ranks popular entities high regardless of
the query.  This module measures that directly: the rank correlation
between an entity's *query-averaged object score* and its frequency in
the training graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..autograd import no_grad
from ..kg.graph import KnowledgeGraph
from ..kg.stats import entity_frequency
from .base import KGEModel

__all__ = ["PopularityBias", "popularity_bias"]


@dataclass(frozen=True)
class PopularityBias:
    """Result of a popularity-bias probe."""

    correlation: float
    p_value: float
    num_queries: int

    @property
    def is_biased(self) -> bool:
        """Conventional verdict: significant positive rank correlation."""
        return self.correlation > 0.0 and self.p_value < 0.05


def popularity_bias(
    model: KGEModel,
    graph: KnowledgeGraph,
    num_queries: int = 200,
    seed: int = 0,
    chunk_size: int = 64,
) -> PopularityBias:
    """Measure how strongly the model's scores track entity popularity.

    ``num_queries`` random (s, r) pairs are drawn from the training
    triples; every entity is scored as the object of each query and the
    per-entity mean score is rank-correlated (Spearman) with the
    entity's object-side frequency.

    A correlation near zero means scores reflect query semantics; a large
    positive correlation means popular entities score high on *any*
    query — the amplification the paper warns about.
    """
    if num_queries < 2:
        raise ValueError("need at least 2 probe queries")
    rng = np.random.default_rng(seed)
    train = graph.train.array
    picks = rng.integers(0, len(train), size=num_queries)
    queries = train[picks][:, :2]

    totals = np.zeros(graph.num_entities)
    with no_grad():
        for start in range(0, num_queries, chunk_size):
            batch = queries[start : start + chunk_size]
            scores = model.scores_sp(batch[:, 0], batch[:, 1])
            totals += scores.sum(axis=0)
    mean_scores = totals / num_queries

    frequency = entity_frequency(graph.train, "object")
    result = scipy_stats.spearmanr(mean_scores, frequency)
    return PopularityBias(
        correlation=float(result.statistic),
        p_value=float(result.pvalue),
        num_queries=num_queries,
    )
