"""Tests for the NN module system: parameters, layers, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import (
    BatchNorm,
    Conv2d,
    Dropout,
    Embedding,
    Linear,
    Module,
    Parameter,
    Tensor,
)

RNG = np.random.default_rng(5)


class _Net(Module):
    def __init__(self):
        super().__init__()
        self.linear1 = Linear(4, 3, np.random.default_rng(0))
        self.linear2 = Linear(3, 2, np.random.default_rng(1))
        self.drop = Dropout(0.5, np.random.default_rng(2))

    def __call__(self, x):
        return self.linear2(self.drop(self.linear1(x)))


class TestModule:
    def test_parameter_discovery_is_recursive(self):
        net = _Net()
        params = list(net.parameters())
        # two weights + two biases
        assert len(params) == 4
        assert all(isinstance(p, Parameter) for p in params)

    def test_parameters_are_unique(self):
        net = _Net()
        net.alias = net.linear1  # shared submodule must not duplicate params
        ids = [id(p) for p in net.parameters()]
        assert len(ids) == len(set(ids))

    def test_num_parameters(self):
        net = _Net()
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 2 + 2

    def test_train_eval_propagates(self):
        net = _Net()
        net.eval()
        assert not net.drop.training
        net.train()
        assert net.drop.training

    def test_zero_grad_clears_all(self):
        net = _Net()
        out = net(Tensor(RNG.normal(size=(2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_state_dict_roundtrip(self):
        net = _Net()
        state = net.state_dict()
        other = _Net()
        other.load_state_dict(state)
        for key, value in other.state_dict().items():
            np.testing.assert_array_equal(value, state[key])

    def test_state_dict_returns_copies(self):
        net = _Net()
        state = net.state_dict()
        state["linear1.weight"][...] = 0.0
        assert not np.allclose(net.linear1.weight.data, 0.0)

    def test_load_state_dict_rejects_missing_keys(self):
        net = _Net()
        state = net.state_dict()
        del state["linear1.weight"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self):
        net = _Net()
        state = net.state_dict()
        state["linear1.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestBuffers:
    def test_batchnorm_buffers_in_state_dict(self):
        bn = BatchNorm(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_buffers_roundtrip(self):
        bn = BatchNorm(2, momentum=1.0)
        bn(Tensor(np.full((4, 2), 7.0)))  # pushes running stats
        state = bn.state_dict()
        fresh = BatchNorm(2)
        fresh.load_state_dict(state)
        np.testing.assert_array_equal(fresh.running_mean, bn.running_mean)
        np.testing.assert_array_equal(fresh.running_var, bn.running_var)

    def test_buffer_shape_mismatch_rejected(self):
        bn = BatchNorm(2)
        state = bn.state_dict()
        state["running_mean"] = np.zeros(5)
        with pytest.raises(ValueError, match="buffer"):
            BatchNorm(2).load_state_dict(state)

    def test_nested_module_buffers_prefixed(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.norm = BatchNorm(2)

        state = Net().state_dict()
        assert "norm.running_mean" in state

    def test_loaded_buffers_are_copies(self):
        bn = BatchNorm(2)
        state = bn.state_dict()
        fresh = BatchNorm(2)
        fresh.load_state_dict(state)
        state["running_mean"][...] = 99.0
        assert not np.allclose(fresh.running_mean, 99.0)


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, RNG)
        out = emb(np.asarray([1, 5, 5]))
        assert out.shape == (3, 4)

    def test_lookup_matches_weight_rows(self):
        emb = Embedding(10, 4, RNG)
        out = emb(np.asarray([3]))
        np.testing.assert_array_equal(out.data[0], emb.weight.data[3])

    def test_gradient_scatters(self):
        emb = Embedding(5, 2, np.random.default_rng(0))
        out = emb(np.asarray([1, 1, 3]))
        out.sum().backward()
        np.testing.assert_array_equal(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_array_equal(emb.weight.grad[3], [1.0, 1.0])
        np.testing.assert_array_equal(emb.weight.grad[0], [0.0, 0.0])

    def test_normalize_rows(self):
        emb = Embedding(6, 3, RNG)
        emb.normalize_rows_()
        norms = np.linalg.norm(emb.weight.data, axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_init_schemes(self):
        for init in ("xavier_uniform", "xavier_normal", "normal"):
            Embedding(4, 4, np.random.default_rng(0), init=init)
        with pytest.raises(ValueError):
            Embedding(4, 4, RNG, init="nope")

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            Embedding(0, 4, RNG)


class TestLinear:
    def test_affine_math(self):
        layer = Linear(3, 2, np.random.default_rng(0))
        x = RNG.normal(size=(4, 3))
        out = layer(Tensor(x))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(out.data, expected)

    def test_no_bias(self):
        layer = Linear(3, 2, np.random.default_rng(0), bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1


class TestConv2dModule:
    def test_output_shape(self):
        conv = Conv2d(1, 8, 3, np.random.default_rng(0))
        out = conv(Tensor(np.zeros((2, 1, 6, 6))))
        assert out.shape == (2, 8, 4, 4)


class TestBatchNorm:
    def test_training_normalises_batch(self):
        bn = BatchNorm(3)
        x = RNG.normal(loc=5.0, scale=2.0, size=(64, 3))
        out = bn(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_4d_normalises_per_channel(self):
        bn = BatchNorm(2)
        x = RNG.normal(loc=3.0, size=(8, 2, 4, 4))
        out = bn(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)

    def test_running_stats_update(self):
        bn = BatchNorm(2, momentum=0.5)
        x = np.ones((4, 2)) * 10.0
        bn(Tensor(x))
        np.testing.assert_allclose(bn.running_mean, [5.0, 5.0])

    def test_eval_uses_running_stats(self):
        bn = BatchNorm(1, momentum=1.0)
        bn(Tensor(np.full((8, 1), 4.0)))  # running mean -> 4, var -> 0
        bn.eval()
        out = bn(Tensor(np.full((2, 1), 4.0)))
        np.testing.assert_allclose(out.data, 0.0, atol=1e-3)

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError):
            BatchNorm(2)(Tensor(np.zeros((2, 2, 2))))

    def test_gradients_flow_to_gamma_beta(self):
        bn = BatchNorm(3)
        out = bn(Tensor(RNG.normal(size=(16, 3)), requires_grad=True))
        out.sum().backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestDropoutModule:
    def test_identity_in_eval(self):
        drop = Dropout(0.9, np.random.default_rng(0))
        drop.eval()
        x = RNG.normal(size=(4,))
        np.testing.assert_array_equal(drop(Tensor(x)).data, x)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(-0.1, RNG)
