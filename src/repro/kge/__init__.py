"""Knowledge-graph embedding library: models, training, evaluation.

Implements from scratch (on :mod:`repro.autograd`) the models the paper
covers — TransE, DistMult, ComplEx, RESCAL, HolE, ConvE — plus the
training regimes and the object-side corruption ranking protocol used by
the paper's experiments.
"""

from .base import KGEModel, available_models, create_model, register_model
from .checkpoint import checkpoint_header, load_model, save_model
from .complex_ import ComplEx
from .config import ModelConfig, TrainConfig, expand_grid
from .conve import ConvE
from .diagnostics import PopularityBias, popularity_bias
from .distmult import DistMult
from .evaluation import (
    RankingMetrics,
    compute_ranks,
    evaluate_ranking,
    generate_hard_negatives,
    triple_classification,
)
from .hole import HolE
from .losses import (
    BCEWithLogitsLoss,
    MarginRankingLoss,
    SelfAdversarialLoss,
    SoftmaxCrossEntropyLoss,
    create_loss,
)
from .negative_sampling import NegativeSampler
from .query import Answer, top_objects, top_subjects
from .ranking import GroupedFilter, RankingEngine, RankingStats, ScoreRowCache
from .reciprocal import ReciprocalWrapper
from .rescal import RESCAL
from .rotate import RotatE
from .simple_ import SimplE
from .training import TrainingResult, fit, train_model
from .transe import TransE
from .tucker import TuckER

__all__ = [
    "KGEModel",
    "create_model",
    "register_model",
    "available_models",
    "TransE",
    "DistMult",
    "ComplEx",
    "RESCAL",
    "HolE",
    "ConvE",
    "RotatE",
    "SimplE",
    "TuckER",
    "checkpoint_header",
    "save_model",
    "load_model",
    "ModelConfig",
    "TrainConfig",
    "expand_grid",
    "MarginRankingLoss",
    "BCEWithLogitsLoss",
    "SelfAdversarialLoss",
    "SoftmaxCrossEntropyLoss",
    "create_loss",
    "NegativeSampler",
    "ReciprocalWrapper",
    "TrainingResult",
    "train_model",
    "fit",
    "RankingMetrics",
    "compute_ranks",
    "RankingEngine",
    "RankingStats",
    "GroupedFilter",
    "ScoreRowCache",
    "evaluate_ranking",
    "generate_hard_negatives",
    "triple_classification",
    "PopularityBias",
    "popularity_bias",
    "Answer",
    "top_objects",
    "top_subjects",
]


def __getattr__(name: str):
    # Deprecation shim: the brute-force reference ranker was historically
    # re-exported here, but its canonical home is repro.kge.evaluation.
    # Keeping it lazily importable (with a warning) lets old notebooks and
    # scripts keep running one more release.
    if name == "compute_ranks_reference":
        import warnings

        warnings.warn(
            "importing compute_ranks_reference from repro.kge is deprecated; "
            "import it from repro.kge.evaluation instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from .evaluation import compute_ranks_reference

        return compute_ranks_reference
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
