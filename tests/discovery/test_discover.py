"""Tests for Algorithm 1 (discover_facts): pseudocode invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import (
    MAX_GENERATION_ITERATIONS,
    create_strategy,
    discover_facts,
    theoretical_mrr_floor,
)
from repro.kg import GraphStatistics


@pytest.fixture(scope="module")
def discovery(request):
    return None


class TestInvariants:
    @pytest.fixture(scope="class")
    def result(self, trained_distmult, tiny_graph):
        return discover_facts(
            trained_distmult,
            tiny_graph,
            strategy="entity_frequency",
            top_n=15,
            max_candidates=100,
            seed=0,
        )

    def test_no_fact_is_a_training_triple(self, result, tiny_graph):
        """Line 12: candidates already in G are filtered out."""
        if result.num_facts:
            assert not tiny_graph.train.contains(result.facts).any()

    def test_all_ranks_within_top_n(self, result):
        """Line 15: candidates ranked worse than top_n are dropped."""
        assert (result.ranks <= 15).all()

    def test_ranks_at_least_one(self, result):
        assert (result.ranks >= 1).all()

    def test_facts_and_ranks_aligned(self, result):
        assert len(result.facts) == len(result.ranks)

    def test_no_duplicate_facts(self, result, tiny_graph):
        from repro.kg import encode_keys

        keys = encode_keys(
            result.facts, tiny_graph.num_entities, tiny_graph.num_relations
        )
        assert len(np.unique(keys)) == len(keys)

    def test_no_self_loops(self, result):
        assert (result.facts[:, 0] != result.facts[:, 2]).all()

    def test_mrr_above_theoretical_floor(self, result):
        if result.num_facts:
            assert result.mrr() >= theoretical_mrr_floor(15)

    def test_per_relation_counts_sum_to_total(self, result):
        assert sum(result.per_relation.values()) == result.num_facts

    def test_candidate_budget_respected(self, result, tiny_graph):
        assert result.candidates_generated <= 100 * tiny_graph.num_relations

    def test_runtime_breakdown_positive(self, result):
        assert result.runtime_seconds > 0
        assert result.generation_seconds >= 0
        assert result.ranking_seconds >= 0
        assert result.weight_seconds >= 0

    def test_summary_keys(self, result):
        summary = result.summary()
        for key in ("strategy", "facts_count", "mrr", "runtime_seconds",
                    "efficiency_facts_per_hour"):
            assert key in summary
        # Retired aliases no longer appear in the payload.
        assert "num_facts" not in summary

    def test_summary_includes_ranking_engine_counters(self, result):
        summary = result.summary()
        for key in ("unique_queries_count", "rows_scored_count",
                    "rows_reused_count", "cache_hits_count",
                    "score_seconds", "filter_seconds"):
            assert key in summary
        assert summary["rows_scored_count"] <= summary["unique_queries_count"]
        assert summary["rows_scored_count"] < result.candidates_generated

    def test_top_facts_sorted(self, result):
        top = result.top_facts(limit=10)
        assert len(top) <= 10
        sorted_ranks = np.sort(result.ranks)[: len(top)]
        # Ranks of top facts equal the smallest ranks overall.
        recovered = []
        order = np.argsort(result.ranks, kind="stable")[: len(top)]
        np.testing.assert_array_equal(result.facts[order], top)
        np.testing.assert_array_equal(result.ranks[order], sorted_ranks)

    def test_labelled_facts(self, result, tiny_graph):
        labelled = result.labelled_facts(tiny_graph, limit=5)
        assert len(labelled) <= 5
        for s, r, o, rank in labelled:
            assert s.startswith("e_") and o.startswith("e_")
            assert r.startswith("r_")
            assert rank >= 1.0
        ranks = [row[3] for row in labelled]
        assert ranks == sorted(ranks)

    def test_save_tsv(self, result, tiny_graph, tmp_path):
        path = tmp_path / "facts.tsv"
        result.save_tsv(path, tiny_graph)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == result.num_facts
        assert all(len(line.split("\t")) == 4 for line in lines)


class TestDeterminism:
    def test_same_seed_same_facts(self, trained_distmult, tiny_graph):
        kwargs = dict(strategy="graph_degree", top_n=20, max_candidates=64)
        a = discover_facts(trained_distmult, tiny_graph, seed=5, **kwargs)
        b = discover_facts(trained_distmult, tiny_graph, seed=5, **kwargs)
        np.testing.assert_array_equal(a.facts, b.facts)
        np.testing.assert_array_equal(a.ranks, b.ranks)

    def test_different_seeds_generally_differ(self, trained_distmult, tiny_graph):
        kwargs = dict(strategy="uniform_random", top_n=20, max_candidates=64)
        a = discover_facts(trained_distmult, tiny_graph, seed=1, **kwargs)
        b = discover_facts(trained_distmult, tiny_graph, seed=2, **kwargs)
        assert a.facts.shape != b.facts.shape or not np.array_equal(a.facts, b.facts)


class TestParameters:
    def test_invalid_top_n(self, trained_distmult, tiny_graph):
        with pytest.raises(ValueError):
            discover_facts(trained_distmult, tiny_graph, top_n=0)

    def test_invalid_max_candidates(self, trained_distmult, tiny_graph):
        with pytest.raises(ValueError):
            discover_facts(trained_distmult, tiny_graph, max_candidates=0)

    def test_relation_subset(self, trained_distmult, tiny_graph):
        result = discover_facts(
            trained_distmult, tiny_graph, relations=[0], top_n=20,
            max_candidates=50, seed=0,
        )
        if result.num_facts:
            assert set(result.facts[:, 1]) == {0}
        assert set(result.per_relation) == {0}

    def test_strategy_instance_accepted(self, trained_distmult, tiny_graph):
        strategy = create_strategy("entity_frequency")
        result = discover_facts(
            trained_distmult, tiny_graph, strategy=strategy, top_n=10,
            max_candidates=36, seed=0,
        )
        assert result.strategy == "entity_frequency"

    def test_shared_stats_avoid_weight_cost(self, trained_distmult, tiny_graph):
        stats = GraphStatistics(tiny_graph.train)
        stats.triangles  # pre-warm
        result = discover_facts(
            trained_distmult, tiny_graph, strategy="cluster_triangles",
            top_n=10, max_candidates=36, seed=0, stats=stats,
        )
        fresh = discover_facts(
            trained_distmult, tiny_graph, strategy="cluster_triangles",
            top_n=10, max_candidates=36, seed=0,
        )
        assert result.weight_seconds <= fresh.weight_seconds

    def test_higher_top_n_yields_superset_count(self, trained_distmult, tiny_graph):
        """§4.3: increasing top_n yields more facts (same candidates)."""
        low = discover_facts(
            trained_distmult, tiny_graph, strategy="entity_frequency",
            top_n=5, max_candidates=64, seed=0,
        )
        high = discover_facts(
            trained_distmult, tiny_graph, strategy="entity_frequency",
            top_n=30, max_candidates=64, seed=0,
        )
        assert high.num_facts >= low.num_facts

    def test_higher_top_n_lowers_mrr(self, trained_distmult, tiny_graph):
        """§4.3: quality deteriorates as top_n grows (when new facts appear)."""
        low = discover_facts(
            trained_distmult, tiny_graph, strategy="entity_frequency",
            top_n=2, max_candidates=100, seed=0,
        )
        high = discover_facts(
            trained_distmult, tiny_graph, strategy="entity_frequency",
            top_n=38, max_candidates=100, seed=0,
        )
        if high.num_facts > low.num_facts > 0:
            assert high.mrr() <= low.mrr()

    def test_generation_iteration_cap_is_five(self):
        assert MAX_GENERATION_ITERATIONS == 5

    def test_sample_size_formula(self, trained_distmult, tiny_graph):
        """Line 4: sample_size = √max_candidates + 10 caps the mesh size.

        With max_candidates = 25 the mesh is at most 15×15 = 225 per
        iteration, so ≤ 5 · 225 candidates could ever be generated, but
        the budget truncates each relation to 25.
        """
        result = discover_facts(
            trained_distmult, tiny_graph, strategy="uniform_random",
            top_n=tiny_graph.num_entities, max_candidates=25, seed=0,
        )
        assert all(
            count <= 25 for count in np.bincount(result.facts[:, 1])
        ) if result.num_facts else True


class TestRuleFilteredDiscovery:
    def test_discovered_facts_respect_rules(self, trained_distmult, tiny_graph):
        from repro.discovery import RuleFilter

        rules = RuleFilter(tiny_graph.train)
        result = discover_facts(
            trained_distmult, tiny_graph, strategy="entity_frequency",
            top_n=tiny_graph.num_entities, max_candidates=100, seed=0,
            rule_filter=rules,
        )
        if result.num_facts:
            assert rules.accept_mask(result.facts).all()

    def test_rules_never_add_candidates(self, trained_distmult, tiny_graph):
        from repro.discovery import RuleFilter

        kwargs = dict(
            strategy="entity_frequency", top_n=20, max_candidates=100, seed=0,
        )
        plain = discover_facts(trained_distmult, tiny_graph, **kwargs)
        pruned = discover_facts(
            trained_distmult, tiny_graph,
            rule_filter=RuleFilter(tiny_graph.train), **kwargs,
        )
        assert pruned.candidates_generated <= plain.candidates_generated


class TestRankingEngineWiring:
    def test_engine_config_does_not_change_results(
        self, trained_distmult, tiny_graph
    ):
        """Cache and thread-pool settings are pure optimisations: same
        seed ⇒ same facts and ranks regardless of engine configuration."""
        from repro.kge import RankingEngine

        kwargs = dict(
            strategy="entity_frequency", top_n=15, max_candidates=100, seed=0
        )
        plain = discover_facts(trained_distmult, tiny_graph, **kwargs)
        cached = discover_facts(
            trained_distmult, tiny_graph, cache_size=64, **kwargs
        )
        threaded = discover_facts(
            trained_distmult, tiny_graph, workers=4, **kwargs
        )
        shared = discover_facts(
            trained_distmult,
            tiny_graph,
            engine=RankingEngine(cache_size=32, workers=2),
            **kwargs,
        )
        for other in (cached, threaded, shared):
            np.testing.assert_array_equal(plain.facts, other.facts)
            np.testing.assert_array_equal(plain.ranks, other.ranks)

    def test_shared_engine_reports_per_run_deltas(
        self, trained_distmult, tiny_graph
    ):
        from repro.kge import RankingEngine

        engine = RankingEngine(cache_size=64)
        kwargs = dict(
            strategy="entity_frequency", top_n=15, max_candidates=100, seed=0
        )
        first = discover_facts(trained_distmult, tiny_graph, engine=engine, **kwargs)
        second = discover_facts(trained_distmult, tiny_graph, engine=engine, **kwargs)
        # Counters in each result cover only that run, not the engine's lifetime.
        assert first.ranking_stats["candidates_ranked"] == first.candidates_generated
        assert second.ranking_stats["candidates_ranked"] == second.candidates_generated
        # The second identical run is served from the shared score cache.
        assert second.ranking_stats["cache_hits"] > 0
        assert second.ranking_stats["rows_scored"] < first.ranking_stats["rows_scored"]


class TestEdgeCases:
    def test_empty_relation_list(self, trained_distmult, tiny_graph):
        result = discover_facts(
            trained_distmult, tiny_graph, relations=[], top_n=10,
            max_candidates=25, seed=0,
        )
        assert result.num_facts == 0
        assert result.facts.shape == (0, 3)

    def test_top_n_equal_num_entities_keeps_everything(
        self, trained_distmult, tiny_graph
    ):
        result = discover_facts(
            trained_distmult, tiny_graph, strategy="uniform_random",
            top_n=tiny_graph.num_entities, max_candidates=36, seed=0,
        )
        # Every generated candidate must pass the rank filter.
        assert result.num_facts == result.candidates_generated

    def test_efficiency_zero_when_no_facts(self, trained_distmult, tiny_graph):
        result = discover_facts(
            trained_distmult, tiny_graph, relations=[], top_n=10,
            max_candidates=25,
        )
        assert result.efficiency_facts_per_hour() == 0.0
        assert result.mrr() == 0.0
