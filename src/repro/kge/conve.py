"""ConvE (Dettmers et al., 2018): convolutional 2-D embeddings.

The subject and relation embeddings are reshaped into 2-D grids, stacked,
passed through a 3×3 convolution, and projected back to the embedding
space; the result is matched against every object embedding plus a
per-entity bias.  ConvE is inherently a ``score_sp`` (1-vs-all) model,
which fits the paper's object-side corruption protocol.
"""

from __future__ import annotations

import numpy as np

from ..autograd import BatchNorm, Conv2d, Dropout, Linear, Parameter, Tensor, concatenate
from .base import KGEModel, register_model

__all__ = ["ConvE"]


def _grid_shape(dim: int, height: int | None) -> tuple[int, int]:
    """Pick a 2-D reshape (h, w) with h·w = dim, h as close to √dim as given."""
    if height is not None:
        if dim % height != 0:
            raise ValueError(f"embedding dim {dim} not divisible by height {height}")
        return height, dim // height
    best = 1
    for h in range(1, int(np.sqrt(dim)) + 1):
        if dim % h == 0:
            best = h
    return best, dim // best


@register_model("conve")
class ConvE(KGEModel):
    """Convolutional KGE model with batch norm and dropout."""

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        seed: int = 0,
        num_filters: int = 16,
        kernel_size: int = 3,
        embedding_height: int | None = None,
        input_dropout: float = 0.2,
        feature_dropout: float = 0.2,
        hidden_dropout: float = 0.3,
    ) -> None:
        super().__init__(num_entities, num_relations, dim, seed=seed)
        self.emb_h, self.emb_w = _grid_shape(dim, embedding_height)
        stacked_h = 2 * self.emb_h
        if stacked_h < kernel_size or self.emb_w < kernel_size:
            raise ValueError(
                f"embedding grid ({stacked_h}×{self.emb_w}) smaller than "
                f"kernel ({kernel_size})"
            )
        conv_h = stacked_h - kernel_size + 1
        conv_w = self.emb_w - kernel_size + 1
        flat = num_filters * conv_h * conv_w

        self.conv = Conv2d(1, num_filters, kernel_size, self.rng)
        self.bn_input = BatchNorm(1)
        self.bn_conv = BatchNorm(num_filters)
        self.bn_hidden = BatchNorm(dim)
        self.fc = Linear(flat, dim, self.rng)
        self.drop_input = Dropout(input_dropout, self.rng)
        self.drop_feature = Dropout(feature_dropout, self.rng)
        self.drop_hidden = Dropout(hidden_dropout, self.rng)
        self.entity_bias = Parameter(np.zeros(num_entities))
        self.num_filters = num_filters

    def _hidden(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        """The (B, dim) representation of each (s, r) query."""
        batch = len(s)
        s_e = self.entity_embeddings(s).reshape(batch, 1, self.emb_h, self.emb_w)
        r_e = self.relation_embeddings(r).reshape(batch, 1, self.emb_h, self.emb_w)
        x = concatenate([s_e, r_e], axis=2)  # (B, 1, 2h, w)
        x = self.bn_input(x)
        x = self.drop_input(x)
        x = self.conv(x)
        x = self.bn_conv(x)
        x = x.relu()
        x = self.drop_feature(x)
        x = x.reshape(batch, -1)
        x = self.fc(x)
        x = self.drop_hidden(x)
        x = self.bn_hidden(x)
        return x.relu()

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        hidden = self._hidden(s, r)
        return hidden @ self.entity_embeddings.weight.T + self.entity_bias

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        hidden = self._hidden(s, r)
        o_e = self.entity_embeddings(o)
        o = np.asarray(o, dtype=np.int64)
        return (hidden * o_e).sum(axis=-1) + self.entity_bias[o]

    def sparse_entity_parameters(self) -> tuple:
        # The per-entity output bias is gathered with the same id arrays
        # as the entity table, so it rides the row-sparse path too.
        return (self.entity_embeddings.weight, self.entity_bias)

    def config_options(self) -> dict:
        return {
            "num_filters": self.num_filters,
            "kernel_size": self.conv.kernel_size,
            "embedding_height": self.emb_h,
            "input_dropout": self.drop_input.rate,
            "feature_dropout": self.drop_feature.rate,
            "hidden_dropout": self.drop_hidden.rate,
        }
