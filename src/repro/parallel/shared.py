"""Shared-memory model publication: zero-copy embeddings across processes.

The campaign fabric (:mod:`repro.parallel.scheduler`) spawns worker
processes that score candidates against trained models.  Pickling a
model into every worker would copy the full embedding tables per
process; instead the parent *publishes* the model's parameter matrices
into one :mod:`multiprocessing.shared_memory` segment and ships workers
a tiny picklable :class:`ModelHandle`.  Workers rebuild the module tree
from the handle's header and bind every parameter to a **read-only
view** over the segment (:meth:`repro.autograd.Module.bind_state`), so
all workers on a host score against the same physical pages.

Ownership rules
---------------

* The publishing process owns the segment: it is the only one that may
  :meth:`~SharedEmbeddingStore.close` with ``unlink=True`` (destroying
  the segment), and it must outlive every worker that attaches.
* Attached views are read-only — an attached model is inference-only by
  construction; writing to its parameters raises at assignment time.
* Workers attach via :func:`attach_model` from processes spawned by the
  publisher, which therefore share its resource-tracker process: the
  attachment's duplicate registration is a set no-op there, and segment
  lifetime stays solely with the publisher's unlink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from .. import faults
from ..kge.base import KGEModel, create_model
from ..resilience import SegmentLostError
from . import registry

__all__ = ["ArraySpec", "ModelHandle", "SharedEmbeddingStore", "attach_model"]

#: Byte alignment of every array inside a segment (numpy is happiest
#: when float64 blocks start on cache-line-friendly boundaries).
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArraySpec:
    """Placement of one named state array inside a shared segment."""

    name: str
    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ModelHandle:
    """Picklable description of a model published to shared memory.

    Carries the checkpoint-style rebuild header (registry name, sizes,
    seed, constructor options) plus the segment name and the placement
    of every state array; :func:`attach_model` turns it back into a
    scoring-ready model without copying any parameter data.
    """

    segment: str
    specs: tuple[ArraySpec, ...]
    model: str
    num_entities: int
    num_relations: int
    dim: int
    seed: int
    options: dict = field(default_factory=dict)


class SharedEmbeddingStore:
    """Owner-side handle of one published model (parent process only).

    Use as a context manager — the segment is unlinked on exit even when
    the campaign fails, so no shared-memory segments leak:

    >>> with SharedEmbeddingStore.publish(model) as store:   # doctest: +SKIP
    ...     scheduler.run(cells_referencing(store.handle))
    """

    def __init__(self, shm: shared_memory.SharedMemory, handle: ModelHandle) -> None:
        self._shm = shm
        self.handle = handle
        self._closed = False

    @classmethod
    def publish(cls, model: KGEModel) -> "SharedEmbeddingStore":
        """Copy ``model``'s state into a fresh shared-memory segment."""
        state = model.state_dict()
        specs: list[ArraySpec] = []
        offset = 0
        for name in sorted(state):
            array = np.ascontiguousarray(state[name])
            state[name] = array
            offset = _aligned(offset)
            specs.append(
                ArraySpec(
                    name=name,
                    offset=offset,
                    shape=tuple(array.shape),
                    dtype=array.dtype.str,
                )
            )
            offset += array.nbytes
        # Registry-allocated names embed the owner pid, which is what
        # makes crashed-run segments findable by the orphan scan.
        shm = shared_memory.SharedMemory(
            create=True, name=registry.allocate_name(), size=max(offset, 1)
        )
        registry.register_segment(shm)
        try:
            for spec in specs:
                view = np.ndarray(
                    spec.shape,
                    dtype=np.dtype(spec.dtype),
                    buffer=shm.buf,
                    offset=spec.offset,
                )
                view[...] = state[spec.name]
        except BaseException:
            shm.close()
            shm.unlink()
            registry.unregister_segment(shm.name)
            raise
        handle = ModelHandle(
            segment=shm.name,
            specs=tuple(specs),
            model=model.model_name,
            num_entities=model.num_entities,
            num_relations=model.num_relations,
            dim=model.dim,
            seed=model.seed,
            options=model.config_options(),
        )
        return cls(shm, handle)

    @property
    def nbytes(self) -> int:
        """Size of the shared segment in bytes."""
        return self._shm.size

    def close(self, unlink: bool = True) -> None:
        """Release the owner's mapping; ``unlink`` destroys the segment.

        Idempotent, including against the segment already being gone —
        after a crash the atexit/signal reaper (or an orphan sweep from
        a later run) may have unlinked it first, and double-close must
        not turn cleanup into a new failure.  Attached workers keep
        their existing mappings alive (POSIX semantics), but no new
        process can attach after unlink.
        """
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            registry.unregister_segment(self._shm.name)

    def __enter__(self) -> "SharedEmbeddingStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close(unlink=True)
        return False


def attach_model(handle: ModelHandle) -> tuple[KGEModel, shared_memory.SharedMemory]:
    """Rebuild a published model with zero-copy parameter views (worker side).

    Returns the evaluation-mode model plus the segment mapping, which the
    caller must keep referenced for as long as the model is used (the
    parameter arrays alias its buffer) and ``close()`` when done.
    Raises :class:`~repro.resilience.SegmentLostError` when the segment
    no longer exists (publisher crashed and was reaped, or unlinked
    early) so callers can distinguish a lost publication from an
    ordinary missing file.
    """
    faults.trigger("shared_attach", handle.segment)
    try:
        shm = shared_memory.SharedMemory(name=handle.segment)
    except FileNotFoundError as error:
        raise SegmentLostError(
            f"shared-memory segment {handle.segment!r} is gone; the "
            f"publishing process has exited or unlinked it"
        ) from error
    # CPython registers *attachments* with the resource tracker as if
    # they were owned.  Spawned children share the publisher's tracker
    # process, whose per-type cache is a set — the duplicate REGISTER is
    # a no-op and the publisher's unlink clears the single entry, so no
    # compensating unregister is needed (and sending one would delete
    # the publisher's own registration).  Attaching from an unrelated
    # process tree is outside this fabric's contract.
    model = create_model(
        handle.model,
        num_entities=handle.num_entities,
        num_relations=handle.num_relations,
        dim=handle.dim,
        seed=handle.seed,
        **handle.options,
    )
    state: dict[str, np.ndarray] = {}
    for spec in handle.specs:
        view = np.ndarray(
            spec.shape,
            dtype=np.dtype(spec.dtype),
            buffer=shm.buf,
            offset=spec.offset,
        )
        view.flags.writeable = False
        state[spec.name] = view
    model.bind_state(state)
    model.eval()
    return model, shm
