"""Append-only JSONL run journals for resumable campaigns.

Each record is one JSON object on one line, flushed and fsynced at
append time, so a killed process loses at most the line it was writing.
Readers tolerate exactly that: a torn trailing line (or any undecodable
line) is counted in :attr:`JournalView.corrupt_lines` and skipped
instead of poisoning the whole campaign state.

Format v2 wraps every record in a checksummed envelope::

    {"crc": "9f3a01c2", "record": {"event": "cell_started", ...}}

where ``crc`` is the CRC32 of the canonical JSON encoding of
``record``.  The first line of a fresh journal is a header record
(``{"event": "journal_header", "version": 2}``) in the same envelope.
The checksum distinguishes *torn* lines (a crash mid-append) from
*silently damaged* ones (a flipped byte that still parses as JSON) —
v1 could only detect the former.  v1 journals (bare record objects)
remain fully readable, and a single file may legally contain both
shapes after an upgrade-in-place append.

Writers additionally heal the crash case: :meth:`RunJournal.append`
quarantines a torn trailing line into ``<journal>.quarantine`` before
writing, so the file it extends is always well-formed.
:meth:`RunJournal.read` never mutates the file — inspection tools
(``repro journal``) stay side-effect free.

The journal is deliberately generic — records carry an ``event`` name
plus arbitrary JSON fields — and :mod:`repro.experiments.runner` layers
the campaign semantics (``cell_started`` / ``cell_succeeded`` /
``cell_failed`` / ``cell_timeout``) on top.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from .. import faults
from .errors import FaultInjectedError

__all__ = ["RunJournal", "JournalView", "error_fingerprint", "JOURNAL_VERSION"]

#: Format version written by :meth:`RunJournal.append`.
JOURNAL_VERSION = 2

_HEADER_EVENT = "journal_header"


def error_fingerprint(error: BaseException, limit: int = 200) -> str:
    """A compact, stable identifier for a failure: ``Type: first line``."""
    first_line = str(error).splitlines()[0] if str(error) else ""
    return f"{type(error).__name__}: {first_line}"[:limit]


def _record_crc(canonical: str) -> str:
    return f"{zlib.crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"


def _envelope_line(record: dict) -> str:
    canonical = json.dumps(record, ensure_ascii=False)
    return json.dumps(
        {"crc": _record_crc(canonical), "record": record}, ensure_ascii=False
    )


@dataclass
class JournalView:
    """Parsed journal contents.

    ``version`` is the format declared by the file's header record, or
    1 for headerless (pre-v2) journals.  Header records are consumed
    into ``version`` and do not appear in ``records``.
    """

    records: list[dict] = field(default_factory=list)
    corrupt_lines: int = 0
    version: int = 1

    def by_event(self, event: str) -> list[dict]:
        return [record for record in self.records if record.get("event") == event]


class RunJournal:
    """Crash-safe JSONL event log at a fixed path."""

    def __init__(self, path: Path | str) -> None:
        self.path = Path(path)
        self._tail_checked = False

    @property
    def quarantine_path(self) -> Path:
        """Where torn trailing lines are preserved for post-mortems."""
        return self.path.with_name(self.path.name + ".quarantine")

    def repair(self) -> int:
        """Quarantine a torn trailing line; returns bytes moved aside.

        A crash between ``write`` and the newline leaves a partial final
        line with no ``\\n`` terminator.  The partial bytes are appended
        to :attr:`quarantine_path` and the journal truncated back to its
        last intact record.  Well-formed files are left untouched.
        """
        if not self.path.is_file():
            return 0
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return 0
        keep = data.rfind(b"\n") + 1  # 0 when the whole file is one torn line
        torn = data[keep:]
        with open(self.quarantine_path, "ab") as handle:
            handle.write(torn + b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())
        return len(torn)

    def append(self, event: str, **fields: object) -> dict:
        """Durably append one record; returns the record written.

        The first append to a fresh file writes the v2 header line; the
        first append of this process to an existing file heals any torn
        tail (see :meth:`repair`) so recovery resumes from a well-formed
        journal.
        """
        faults.trigger("journal_append", event)
        record = {"event": event, **fields}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self._tail_checked:
            self.repair()
            self._tail_checked = True
        lines = []
        if not self.path.is_file() or self.path.stat().st_size == 0:
            lines.append(
                _envelope_line({"event": _HEADER_EVENT, "version": JOURNAL_VERSION})
            )
        line = _envelope_line(record)
        torn = faults.torn_append(event)
        if torn:
            line = line[: max(len(line) // 2, 1)]
        lines.append(line)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + ("" if torn else "\n"))
            handle.flush()
            os.fsync(handle.fileno())
        if torn:
            raise FaultInjectedError(f"injected torn append at {event}")
        return record

    def read(self) -> JournalView:
        """All decodable records; torn/corrupt lines are skipped, counted.

        Read-only by design — a torn tail shows up as one corrupt line
        here and is only moved aside by :meth:`append`/:meth:`repair`.
        """
        view = JournalView()
        if not self.path.is_file():
            return view
        for line in self.path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError:
                view.corrupt_lines += 1
                continue
            if not isinstance(parsed, dict):
                view.corrupt_lines += 1
                continue
            record = self._unwrap(parsed)
            if record is None:
                view.corrupt_lines += 1
            elif record.get("event") == _HEADER_EVENT:
                view.version = int(record.get("version", JOURNAL_VERSION))
            else:
                view.records.append(record)
        return view

    @staticmethod
    def _unwrap(parsed: dict) -> dict | None:
        """The record behind one parsed line, or ``None`` if damaged.

        v2 lines are ``{"crc", "record"}`` envelopes whose checksum must
        match; anything else is treated as a bare v1 record.
        """
        if set(parsed.keys()) == {"crc", "record"}:
            record = parsed["record"]
            if not isinstance(record, dict):
                return None
            canonical = json.dumps(record, ensure_ascii=False)
            if _record_crc(canonical) != parsed["crc"]:
                return None
            return record
        return parsed
