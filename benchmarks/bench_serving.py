"""Serving layer — in-process load generation against ``ServeApp``.

Closed-loop clients drive the transport-agnostic ``handle`` entry point
(the exact code path the HTTP worker threads execute, minus socket I/O),
so the numbers measure the serving stack itself: JSON decode, wire-type
validation, registry resolution, single-flight coalescing, the warm
:class:`repro.kge.RankingEngine` and response serialisation.

Two phases are timed:

* **hot** — every client repeats one identical ``/v1/rank`` request, the
  steady state a dashboard or crawler produces; the score rows come from
  the warm engine cache and concurrent repeats coalesce.
* **mixed** — an 80/20 blend of the hot request and per-client cold
  requests over unseen triples, forcing fresh score rows mid-stream.

Assertions, not just measurements:

* hot-phase throughput clears ``GATE_MIN_RPS`` requests/second;
* every hot response is byte-identical, and the served ranks match an
  offline :class:`RankingEngine` run on the same triples bit-for-bit.

Results land in ``benchmarks/results/BENCH_serving.json``.
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
from common import RESULTS_DIR, save_and_print

from repro.api import RankRequest, Session
from repro.experiments import format_table, get_trained_model
from repro.kg import load_dataset
from repro.kge import RankingEngine, save_model
from repro.serve import ModelRegistry, ServeApp

CLIENTS = 4
HOT_REQUESTS_PER_CLIENT = 400
MIXED_REQUESTS_PER_CLIENT = 200
HOT_SHARE = 0.8  # of the mixed phase
TRIPLES_PER_REQUEST = 8
GATE_MIN_RPS = 1000.0


def _drive(app, plan_per_client):
    """Run one closed-loop phase; returns (wall_s, latencies_s, payloads).

    ``plan_per_client[i]`` is the request-body sequence client ``i``
    plays back-to-back.  Latencies are per-request wall times across all
    clients; payloads collects every 200-response body for identity
    checks.
    """
    latencies = [[] for _ in plan_per_client]
    payloads = [[] for _ in plan_per_client]
    barrier = threading.Barrier(len(plan_per_client) + 1)

    def client(index):
        my_latencies = latencies[index]
        my_payloads = payloads[index]
        barrier.wait(timeout=60.0)
        for body in plan_per_client[index]:
            t0 = time.perf_counter()
            status, _, payload = app.handle("POST", "/v1/rank", body)
            my_latencies.append(time.perf_counter() - t0)
            assert status == 200, payload
            my_payloads.append(payload)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(len(plan_per_client))
    ]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60.0)
    t0 = time.perf_counter()
    for thread in threads:
        thread.join(timeout=600.0)
        assert not thread.is_alive(), "load-generator thread wedged"
    wall = time.perf_counter() - t0
    flat_latencies = [value for per in latencies for value in per]
    flat_payloads = [payload for per in payloads for payload in per]
    return wall, flat_latencies, flat_payloads


def _phase_stats(wall, latencies):
    arr = np.asarray(latencies)
    return {
        "requests": int(arr.size),
        "throughput_rps": arr.size / wall,
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
    }


def test_serving_throughput():
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "distmult", graph=graph)

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "distmult.npz"
        save_model(model, checkpoint)
        session = Session(ModelRegistry(graph_loader=lambda name: graph))
        ref = session.add_model("fb15k237-like", checkpoint)
        app = ServeApp(session)

        test = graph.test.array
        as_wire = lambda block: tuple(  # noqa: E731 - local shaping helper
            (int(s), int(r), int(o)) for s, r, o in block
        )
        hot_triples = as_wire(test[:TRIPLES_PER_REQUEST])
        hot_body = RankRequest(model=ref.model_id, triples=hot_triples).to_bytes()
        cold_bodies = []
        for index in range(CLIENTS):
            lo = (index + 1) * TRIPLES_PER_REQUEST
            block = as_wire(test[lo : lo + TRIPLES_PER_REQUEST])
            cold_bodies.append(
                RankRequest(model=ref.model_id, triples=block).to_bytes()
            )

        # Warm-up: load the model, fill the hot score rows, settle BLAS.
        status, _, warm_payload = app.handle("POST", "/v1/rank", hot_body)
        assert status == 200, warm_payload

        flight_before = app.coalescing_counters()
        hot_wall, hot_latencies, hot_payloads = _drive(
            app, [[hot_body] * HOT_REQUESTS_PER_CLIENT] * CLIENTS
        )
        flight_after = app.coalescing_counters()

        hot_span = max(1, int(MIXED_REQUESTS_PER_CLIENT * HOT_SHARE))
        plans = []
        for index in range(CLIENTS):
            plan = [
                hot_body
                if position % MIXED_REQUESTS_PER_CLIENT < hot_span
                else cold_bodies[index]
                for position in range(MIXED_REQUESTS_PER_CLIENT)
            ]
            plans.append(plan)
        mixed_wall, mixed_latencies, mixed_payloads = _drive(app, plans)

    # --- bit-identity: one canonical hot response, equal to offline. ---
    unique_hot = set(hot_payloads)
    assert unique_hot == {warm_payload}
    served_ranks = np.asarray(json.loads(warm_payload)["ranks"])
    offline = RankingEngine().compute_ranks(
        model,
        np.asarray(hot_triples, dtype=np.int64),
        filter_triples=graph.train,
        side="object",
    )
    np.testing.assert_array_equal(served_ranks, offline)

    hot = _phase_stats(hot_wall, hot_latencies)
    mixed = _phase_stats(mixed_wall, mixed_latencies)

    leads = flight_after["leads_count"] - flight_before["leads_count"]
    coalesced = flight_after["coalesced_count"] - flight_before["coalesced_count"]
    assert leads + coalesced == hot["requests"]
    hit_rate = coalesced / hot["requests"]

    # --- the gate: a cached model serves ≥1000 req/s in-process. ---
    assert hot["throughput_rps"] >= GATE_MIN_RPS, hot

    rows = [
        {
            "phase": "hot (1 cached request)",
            "requests": hot["requests"],
            "rps": round(hot["throughput_rps"]),
            "p50_ms": round(hot["p50_ms"], 3),
            "p99_ms": round(hot["p99_ms"], 3),
        },
        {
            "phase": f"mixed ({HOT_SHARE:.0%} hot / cold)",
            "requests": mixed["requests"],
            "rps": round(mixed["throughput_rps"]),
            "p50_ms": round(mixed["p50_ms"], 3),
            "p99_ms": round(mixed["p99_ms"], 3),
        },
    ]

    payload = {
        "dataset": "fb15k237-like",
        "model": "distmult",
        "clients": CLIENTS,
        "triples_per_request": TRIPLES_PER_REQUEST,
        "hot": hot,
        "mixed": mixed,
        "coalescing": {
            "leads_count": leads,
            "coalesced_count": coalesced,
            "hit_rate": hit_rate,
        },
        "gate_min_rps": GATE_MIN_RPS,
        "bit_identical_hot_responses": True,
        "served_matches_offline_engine": True,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_serving.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    save_and_print(
        "serving",
        format_table(
            rows,
            title=(
                f"Serving throughput, {CLIENTS} closed-loop clients "
                f"(coalescing hit-rate {hit_rate:.0%} on the hot phase)"
            ),
        ),
    )
