"""RPR011 bad fixture: a lock-owning class mutating state unlocked."""

from threading import Lock


class Counter:
    def __init__(self):
        self._lock = Lock()
        self.total = 0

    def add(self, value):
        self.total += value
