"""Observability must not change results: bit-identical outputs either way,
and a concurrently-shared registry must stay consistent under workers=N."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import discover_facts
from repro.kge import ModelConfig, TrainConfig, fit
from repro.kge.ranking import RankingEngine
from repro.obs import MetricsRegistry, use_registry


def _train(tiny_graph):
    return fit(
        tiny_graph,
        ModelConfig("distmult", dim=8, seed=3),
        TrainConfig(
            job="kvsall", loss="bce", epochs=4, batch_size=64, lr=0.05, seed=3
        ),
    )


class TestBitIdentical:
    def test_training_is_bitwise_identical_with_obs_enabled(self, tiny_graph):
        disabled = _train(tiny_graph)
        registry = MetricsRegistry()
        with use_registry(registry):
            enabled = _train(tiny_graph)
        assert disabled.losses == enabled.losses
        for name, array in disabled.model.state_dict().items():
            np.testing.assert_array_equal(array, enabled.model.state_dict()[name])
        # ... and the enabled run actually recorded its work.
        snapshot = registry.snapshot()
        assert snapshot["counters"]["train.epochs_count"] == 4
        assert "train" in snapshot["spans"]

    def test_discovery_is_bitwise_identical_with_obs_enabled(
        self, trained_distmult, tiny_graph
    ):
        kwargs = dict(strategy="entity_frequency", top_n=20, max_candidates=64, seed=0)
        disabled = discover_facts(trained_distmult, tiny_graph, **kwargs)
        registry = MetricsRegistry()
        with use_registry(registry):
            enabled = discover_facts(trained_distmult, tiny_graph, **kwargs)
        np.testing.assert_array_equal(disabled.facts, enabled.facts)
        np.testing.assert_array_equal(disabled.ranks, enabled.ranks)
        # The disabled run produces no trace; the enabled run does, and its
        # counters agree with the result object.
        assert disabled.trace == {}
        assert "discover" in enabled.trace
        counters = registry.snapshot()["counters"]
        assert counters["discover.facts_count"] == enabled.num_facts
        assert counters["discover.candidates_count"] == enabled.candidates_generated

    def test_timing_fields_populated_even_when_disabled(
        self, trained_distmult, tiny_graph
    ):
        result = discover_facts(
            trained_distmult, tiny_graph, top_n=20, max_candidates=64, seed=0
        )
        assert result.runtime_seconds > 0.0
        assert result.generation_seconds > 0.0
        assert result.ranking_seconds > 0.0


class TestSpanReconciliation:
    def test_child_span_walltime_within_parent(self, trained_distmult, tiny_graph):
        registry = MetricsRegistry()
        with use_registry(registry):
            discover_facts(
                trained_distmult, tiny_graph, top_n=20, max_candidates=64, seed=0
            )
        spans = registry.snapshot()["spans"]
        discover = spans["discover"]
        child_wall = sum(
            child["wall_seconds"] for child in discover["children"].values()
        )
        assert child_wall <= discover["wall_seconds"]
        rank = discover["children"]["rank"]
        rank_child_wall = sum(
            child["wall_seconds"] for child in rank["children"].values()
        )
        assert rank_child_wall <= rank["wall_seconds"]


class TestConcurrentRegistry:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_threaded_ranking_shares_one_registry(
        self, trained_distmult, tiny_graph, workers
    ):
        registry = MetricsRegistry()
        engine = RankingEngine(workers=workers, chunk_size=16)
        with use_registry(registry):
            result = discover_facts(
                trained_distmult,
                tiny_graph,
                top_n=20,
                max_candidates=64,
                seed=0,
                engine=engine,
            )
        counters = registry.snapshot()["counters"]
        assert counters["rank.candidates_ranked_count"] == result.candidates_generated
        assert (
            counters["rank.rows_scored_count"] + counters["rank.rows_reused_count"]
            == counters["rank.candidates_ranked_count"]
        )

    def test_worker_results_identical_across_widths(
        self, trained_distmult, tiny_graph
    ):
        registry = MetricsRegistry()
        with use_registry(registry):
            results = [
                discover_facts(
                    trained_distmult,
                    tiny_graph,
                    top_n=20,
                    max_candidates=64,
                    seed=0,
                    engine=RankingEngine(workers=n, chunk_size=16),
                )
                for n in (1, 4)
            ]
        np.testing.assert_array_equal(results[0].facts, results[1].facts)
        np.testing.assert_array_equal(results[0].ranks, results[1].ranks)
