"""Optimizer tests: convergence on quadratics and parameter validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import SGD, Adagrad, Adam, Tensor


def _minimise(optimizer_factory, steps: int = 200) -> float:
    """Minimise ||x - target||² and return the final distance."""
    target = np.asarray([1.0, -2.0, 3.0])
    x = Tensor(np.zeros(3), requires_grad=True)
    opt = optimizer_factory([x])
    for _ in range(steps):
        opt.zero_grad()
        diff = x - target
        (diff * diff).sum().backward()
        opt.step()
    return float(np.abs(x.data - target).max())


class TestConvergence:
    def test_sgd(self):
        assert _minimise(lambda p: SGD(p, lr=0.1)) < 1e-6

    def test_sgd_momentum(self):
        # Heavy-ball converges at rate √momentum per step on a quadratic.
        assert _minimise(lambda p: SGD(p, lr=0.05, momentum=0.9), steps=600) < 1e-6

    def test_adagrad(self):
        assert _minimise(lambda p: Adagrad(p, lr=1.0)) < 1e-3

    def test_adam(self):
        assert _minimise(lambda p: Adam(p, lr=0.1), steps=400) < 1e-4

    def test_adam_weight_decay_shrinks_solution(self):
        target = np.asarray([10.0])
        x_plain = Tensor(np.zeros(1), requires_grad=True)
        x_decay = Tensor(np.zeros(1), requires_grad=True)
        plain = Adam([x_plain], lr=0.2)
        decay = Adam([x_decay], lr=0.2, weight_decay=1.0)
        for _ in range(500):
            for x, opt in ((x_plain, plain), (x_decay, decay)):
                opt.zero_grad()
                diff = x - target
                (diff * diff).sum().backward()
                opt.step()
        assert x_decay.data[0] < x_plain.data[0]


class TestValidation:
    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], lr=0.0)

    def test_bad_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0], requires_grad=True)], lr=0.1, momentum=1.0)

    def test_bad_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([Tensor([1.0], requires_grad=True)], lr=0.1, betas=(1.0, 0.9))

    def test_step_skips_gradless_params(self):
        x = Tensor([1.0], requires_grad=True)
        opt = Adam([x], lr=0.1)
        opt.step()  # no backward yet: must not raise or move x
        np.testing.assert_array_equal(x.data, [1.0])


class TestAdamBiasCorrection:
    def test_first_step_size_is_close_to_lr(self):
        """With bias correction the very first Adam step ≈ lr·sign(grad)."""
        x = Tensor([0.0], requires_grad=True)
        opt = Adam([x], lr=0.1)
        opt.zero_grad()
        (x * 3.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(x.data, [-0.1], atol=1e-6)


class TestFusedAdamBitwise:
    """The fused in-place dense Adam step must reproduce, bit for bit, the
    classic allocating implementation it replaced."""

    @staticmethod
    def _reference_step(
        data: np.ndarray,
        grad: np.ndarray,
        m: np.ndarray,
        v: np.ndarray,
        t: int,
        lr: float,
        beta1: float,
        beta2: float,
        eps: float,
        weight_decay: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        # Every expression matches the fused kernel's rounding order;
        # note (1.0 - beta1) is computed, not written as a literal —
        # 1.0 - 0.9 is not the float closest to 0.1.
        if weight_decay > 0.0:
            grad = grad + weight_decay * data
        m = beta1 * m + (1.0 - beta1) * grad
        v = beta2 * v + (1.0 - beta2) * (grad * grad)
        m_hat = m / (1.0 - beta1**t)
        v_hat = v / (1.0 - beta2**t)
        data = data - (lr * m_hat) / (np.sqrt(v_hat) + eps)
        return data, m, v

    @pytest.mark.parametrize("weight_decay", [0.0, 0.02])
    @pytest.mark.parametrize("shape", [(7, 3), (4,), (2, 3, 3)])
    def test_matches_allocating_reference(self, weight_decay, shape):
        rng = np.random.default_rng(11)
        init = rng.standard_normal(shape)
        lr, (beta1, beta2), eps = 0.05, (0.9, 0.999), 1e-8

        param = Tensor(init.copy(), requires_grad=True)
        opt = Adam([param], lr=lr, betas=(beta1, beta2), eps=eps,
                   weight_decay=weight_decay)

        ref = init.copy()
        m = np.zeros(shape)
        v = np.zeros(shape)
        for t in range(1, 10):
            grad = rng.standard_normal(shape) * 10.0 ** rng.integers(-4, 4)
            opt.zero_grad()
            param.grad = grad.copy()
            opt.step()
            ref, m, v = self._reference_step(
                ref, grad, m, v, t, lr, beta1, beta2, eps, weight_decay
            )
            assert np.array_equal(param.data, ref)

    def test_scratch_buffers_are_reused(self):
        param = Tensor(np.zeros((5, 2)), requires_grad=True)
        opt = Adam([param], lr=0.1)
        for _ in range(3):
            opt.zero_grad()
            param.grad = np.ones((5, 2))
            opt.step()
        assert set(opt._scratch) == {0}

    def test_momentum_sgd_replay_vs_dense_sweep(self):
        """Cross-check the SGD momentum lazy replay against an explicit
        per-step dense reference (independent of the dense branch)."""
        rng = np.random.default_rng(5)
        init = rng.standard_normal((6, 2))
        lr, mu = 0.1, 0.9
        batches = [[0, 1], [4], [0], [2, 4]]

        ref = init.copy()
        velocity = np.zeros_like(ref)
        param = Tensor(init.copy(), requires_grad=True)
        param.sparse_grad = True
        opt = SGD([param], lr=lr, momentum=mu)
        for batch in batches:
            idx = np.asarray(batch, dtype=np.int64)
            opt.zero_grad()
            param.gather_rows(idx).sum().backward()
            opt.step()
            grad = np.zeros_like(ref)
            np.add.at(grad, idx, np.ones((idx.shape[0], ref.shape[1])))
            velocity = mu * velocity + grad
            ref = ref - lr * velocity
        opt.flush()
        assert np.array_equal(param.data, ref)
