"""RPR002 — inference hot paths must score under ``autograd.no_grad``.

The discovery and evaluation layers score millions of candidate triples
but never call ``backward``; every scoring call recorded on the autodiff
tape is a backward closure allocated for nothing.  This rule requires
that, inside the inference-only modules (``repro.discovery.*``,
``repro.kge.evaluation`` / ``query`` / ``diagnostics``), every call to a
scoring entry point is lexically enclosed in a ``with no_grad():`` block.

The check is lexical by design: the numpy wrappers (``scores_sp`` etc.)
already guard internally, but an *explicit* block at the call site keeps
the invariant visible, covers future direct ``score_*`` calls, and makes
the whole candidate pipeline (corruption building, filtering) tape-free.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, register_rule

__all__ = ["TapeHygieneRule"]

#: Module prefixes whose scoring calls must run under no_grad.
_SCOPED_MODULES = (
    "repro.discovery",
    "repro.kge.evaluation",
    "repro.kge.query",
    "repro.kge.diagnostics",
    "repro.kge.ranking",
)

#: Scoring entry points: the model interface, the ranking protocol, and
#: the inference-only discovery pipelines built on top of them.
_SCORING_CALLS = frozenset(
    {
        "score_spo",
        "score_sp",
        "score_po",
        "scores_spo",
        "scores_sp",
        "scores_po",
        "compute_ranks",
        "evaluate_ranking",
        "discover_facts",
        "exhaustive_discover_facts",
        "anytime_discover",
    }
)


def _in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in _SCOPED_MODULES
    )


def _is_no_grad(item: ast.withitem) -> bool:
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Name):
        return func.id == "no_grad"
    if isinstance(func, ast.Attribute):
        return func.attr == "no_grad"
    return False


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


@register_rule
class TapeHygieneRule(Rule):
    rule_id = "RPR002"
    name = "tape-hygiene"
    description = (
        "model scoring in repro.discovery / repro.kge.{evaluation,query,"
        "diagnostics} must run inside `with no_grad():`"
    )
    rationale = (
        "Scoring a full candidate mesh records millions of tape nodes "
        "nobody will ever backpropagate through; the memory blow-up is "
        "the difference between a feasible and an infeasible discovery "
        "run.  Inference modules therefore score under no_grad() only."
    )
    example = (
        "def rank(model, c):\n"
        "    return model.score_spo(c)       # RPR002: taped scoring\n"
        "\n"
        "def rank(model, c):\n"
        "    with no_grad():\n"
        "        return model.score_spo(c)   # tape-free\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.module):
            return
        yield from self._walk(ctx, ctx.tree, guarded=False)

    def _walk(
        self, ctx: ModuleContext, node: ast.AST, guarded: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.With) and any(
                _is_no_grad(item) for item in child.items
            ):
                for item in child.items:
                    yield from self._walk(ctx, item, guarded)
                for stmt in child.body:
                    # A def/lambda directly inside the block still defers
                    # its body past the guard.
                    stmt_guarded = not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                    )
                    yield from self._walk(ctx, stmt, guarded=stmt_guarded)
                continue
            # A nested function's body executes later, outside any
            # no_grad block that happens to surround its definition.
            child_guarded = guarded and not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            )
            if isinstance(child, ast.Call):
                name = _call_name(child)
                if name in _SCORING_CALLS and not child_guarded:
                    yield self.finding(
                        ctx,
                        child,
                        f"call to scoring entry point {name}() outside "
                        "`with no_grad():` records unused backward closures",
                    )
            yield from self._walk(ctx, child, child_guarded)
