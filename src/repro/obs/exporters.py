"""Render registry snapshots: JSON file, Prometheus text format, human table.

Every exporter is a pure function ``snapshot -> str`` over the plain-dict
shape produced by :meth:`MetricsRegistry.snapshot`, so snapshots written
to disk by ``--metrics-out`` can be re-rendered later by ``repro obs``
without the process that recorded them.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from .registry import MetricsRegistry
from .spans import flatten_spans

__all__ = [
    "render_json",
    "render_prometheus",
    "render_table",
    "write_snapshot",
    "EXPORTER_FORMATS",
]


def render_json(snapshot: dict[str, Any]) -> str:
    """Canonical JSON rendering (sorted keys, trailing newline)."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def _metric_name(name: str) -> str:
    """Map a dotted metric name to a Prometheus-legal one."""
    sanitized = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _num(value: float) -> str:
    return "%.17g" % value


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """Prometheus text exposition format (version 0.0.4).

    Span nodes are exported as three ``*_total`` families labelled by the
    slash-joined path, mirroring how tracing backends flatten trees.
    """
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_num(snapshot['counters'][name])}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_num(snapshot['gauges'][name])}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_num(bound)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{metric}_sum {_num(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    flat = flatten_spans(snapshot.get("spans", {}))
    if flat:
        for family, key in (
            ("repro_span_count_total", "count"),
            ("repro_span_wall_seconds_total", "wall_seconds"),
            ("repro_span_cpu_seconds_total", "cpu_seconds"),
        ):
            lines.append(f"# TYPE {family} counter")
            for path in sorted(flat):
                value = flat[path][key]
                lines.append(f'{family}{{path="{_label_value(path)}"}} {_num(value)}')
    return "\n".join(lines) + "\n"


def render_table(snapshot: dict[str, Any]) -> str:
    """Human-readable summary: metrics first, then the indented span tree."""
    lines: list[str] = []

    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    if counters or gauges:
        lines.append("metrics")
        width = max(len(n) for n in [*counters, *gauges])
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:g}")

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms")
        for name in sorted(histograms):
            hist = histograms[name]
            mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
            lines.append(
                f"  {name}  count={hist['count']}  sum={hist['sum']:.6f}  mean={mean:.6f}"
            )

    spans = snapshot.get("spans", {})
    if spans:
        lines.append("spans")
        flat = flatten_spans(spans)
        width = max(len(path) for path in flat)
        for path, node in flat.items():
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            lines.append(
                f"  {label:<{width}}  count={node['count']:<6}  "
                f"wall={node['wall_seconds']:.6f}s  cpu={node['cpu_seconds']:.6f}s"
            )

    if not lines:
        lines.append("(empty snapshot)")
    return "\n".join(lines) + "\n"


EXPORTER_FORMATS: dict[str, Callable[[dict[str, Any]], str]] = {
    "json": render_json,
    "prometheus": render_prometheus,
    "table": render_table,
}


def write_snapshot(
    source: MetricsRegistry | dict[str, Any], path: str, fmt: str = "json"
) -> None:
    """Render ``source`` (registry or snapshot dict) to ``path``."""
    if fmt not in EXPORTER_FORMATS:
        raise ValueError(f"unknown exporter format {fmt!r}; pick from {sorted(EXPORTER_FORMATS)}")
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(EXPORTER_FORMATS[fmt](snapshot))
