"""A held-out evaluation protocol for fact discovery — the paper's third
future direction (§6).

The paper observes that fact discovery has *no* evaluation protocol: the
standard train/valid/test split does not work because discovery is not
exhaustive, and absence from the test set does not make a triple false.
This module implements the natural middle ground:

1. **hide** a fraction of the training triples (only triples whose
   entities and relation remain observable elsewhere, so the hidden facts
   stay discoverable in principle);
2. **train** a KGE model on the reduced graph;
3. **discover** facts on the reduced graph;
4. score **recall** (hidden facts recovered / hidden facts whose relation
   was searched) and the **known-true precision** lower bound (recovered
   hidden facts / all discovered facts — a lower bound because other
   discoveries may be true but unknown, exactly the caveat the paper
   raises).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..autograd import no_grad
from ..kg.graph import KnowledgeGraph
from ..kg.stats import GraphStatistics
from ..kg.triples import TripleSet, encode_keys
from ..kge.config import ModelConfig, TrainConfig
from ..kge.ranking import RankingEngine
from ..kge.training import fit
from ..obs import ReportableMixin, span
from .discover import DiscoveryResult, discover_facts

__all__ = ["ProtocolResult", "hide_triples", "heldout_discovery_protocol"]


@dataclass
class ProtocolResult(ReportableMixin):
    """Outcome of one held-out discovery evaluation."""

    num_hidden: int
    num_discovered: int
    num_recovered: int
    recall: float
    known_true_precision: float
    discovery: DiscoveryResult = field(repr=False)
    per_relation_recall: dict[int, float] = field(default_factory=dict)

    def summary(self) -> dict[str, float]:
        return {
            "hidden_count": self.num_hidden,
            "discovered_count": self.num_discovered,
            "recovered_count": self.num_recovered,
            "recall": self.recall,
            "known_true_precision": self.known_true_precision,
        }


def hide_triples(
    graph: KnowledgeGraph, fraction: float, seed: int = 0
) -> tuple[KnowledgeGraph, TripleSet]:
    """Split off a hidden subset of the training triples.

    Only triples whose subject, object and relation all appear in at
    least one *other* training triple are eligible — otherwise the hidden
    fact would reference an entity the reduced model has never seen and
    could not possibly rediscover.

    Returns ``(reduced_graph, hidden_triples)``.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    rng = np.random.default_rng(seed)
    train = graph.train.array
    subject_counts = np.bincount(train[:, 0], minlength=graph.num_entities)
    object_counts = np.bincount(train[:, 2], minlength=graph.num_entities)
    entity_counts = subject_counts + object_counts
    relation_counts = np.bincount(train[:, 1], minlength=graph.num_relations)

    eligible = (
        (entity_counts[train[:, 0]] >= 2)
        & (entity_counts[train[:, 2]] >= 2)
        & (relation_counts[train[:, 1]] >= 2)
    )
    candidates = np.flatnonzero(eligible)
    target = int(len(train) * fraction)
    if target == 0:
        raise ValueError("fraction too small: nothing would be hidden")
    picked = rng.choice(candidates, size=min(target, len(candidates)), replace=False)

    mask = np.zeros(len(train), dtype=bool)
    mask[picked] = True
    hidden = TripleSet(train[mask], graph.num_entities, graph.num_relations)
    reduced = KnowledgeGraph(
        name=f"{graph.name}-hidden{fraction:g}",
        entities=graph.entities,
        relations=graph.relations,
        train=TripleSet(train[~mask], graph.num_entities, graph.num_relations),
        valid=graph.valid,
        test=graph.test,
        metadata=dict(graph.metadata),
    )
    return reduced, hidden


def heldout_discovery_protocol(
    graph: KnowledgeGraph,
    model_config: ModelConfig,
    train_config: TrainConfig,
    strategy: str = "entity_frequency",
    hide_fraction: float = 0.2,
    top_n: int = 50,
    max_candidates: int = 500,
    seed: int = 0,
    engine: RankingEngine | None = None,
) -> ProtocolResult:
    """Run the full hide → train → discover → score protocol.

    ``engine`` is forwarded to :func:`discover_facts`, so protocol
    re-runs over the same reduced graph can share one score-row cache.
    """
    with span("protocol"):
        reduced, hidden = hide_triples(graph, hide_fraction, seed=seed)
        model = fit(reduced, model_config, train_config).model
        # Discovery is pure inference on the trained model; keep the whole
        # pipeline off the autodiff tape.
        with no_grad():
            discovery = discover_facts(
                model,
                reduced,
                strategy=strategy,
                top_n=top_n,
                max_candidates=max_candidates,
                seed=seed,
                stats=GraphStatistics(reduced.train),
                engine=engine,
            )

    recovered_mask = (
        hidden.contains(discovery.facts)
        if discovery.num_facts
        else np.zeros(0, dtype=bool)
    )
    num_recovered = int(recovered_mask.sum())
    recall = num_recovered / len(hidden) if len(hidden) else 0.0
    precision = (
        num_recovered / discovery.num_facts if discovery.num_facts else 0.0
    )

    per_relation_recall: dict[int, float] = {}
    if len(hidden):
        hidden_arr = hidden.array
        n, k = graph.num_entities, graph.num_relations
        recovered_keys = (
            set(encode_keys(discovery.facts[recovered_mask], n, k).tolist())
            if num_recovered
            else set()
        )
        for relation in np.unique(hidden_arr[:, 1]):
            rel_hidden = hidden_arr[hidden_arr[:, 1] == relation]
            keys = encode_keys(rel_hidden, n, k)
            hits = sum(1 for key in keys.tolist() if key in recovered_keys)
            per_relation_recall[int(relation)] = hits / len(rel_hidden)

    return ProtocolResult(
        num_hidden=len(hidden),
        num_discovered=discovery.num_facts,
        num_recovered=num_recovered,
        recall=recall,
        known_true_precision=precision,
        discovery=discovery,
        per_relation_recall=per_relation_recall,
    )
