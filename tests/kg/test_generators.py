"""Tests for the synthetic KG generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import GraphStatistics, KGProfile, generate_kg


def profile(**overrides) -> KGProfile:
    base = dict(
        name="test",
        num_entities=50,
        num_relations=5,
        num_triples=300,
        num_types=4,
        seed=3,
    )
    base.update(overrides)
    return KGProfile(**base)


class TestProfileValidation:
    def test_rejects_too_few_entities(self):
        with pytest.raises(ValueError):
            profile(num_entities=1)

    def test_rejects_zero_relations(self):
        with pytest.raises(ValueError):
            profile(num_relations=0)

    def test_rejects_bad_closure_prob(self):
        with pytest.raises(ValueError):
            profile(triangle_closure_prob=1.5)

    def test_rejects_full_splits(self):
        with pytest.raises(ValueError):
            profile(valid_fraction=0.6, test_fraction=0.5)

    def test_rejects_overfull_id_space(self):
        with pytest.raises(ValueError, match="capacity"):
            profile(num_entities=2, num_relations=1, num_triples=4)


class TestGeneration:
    def test_deterministic(self):
        g1 = generate_kg(profile())
        g2 = generate_kg(profile())
        np.testing.assert_array_equal(g1.train.array, g2.train.array)
        np.testing.assert_array_equal(g1.test.array, g2.test.array)

    def test_different_seeds_differ(self):
        g1 = generate_kg(profile(seed=1))
        g2 = generate_kg(profile(seed=2))
        assert not np.array_equal(g1.train.array, g2.train.array)

    def test_triple_budget_respected(self):
        graph = generate_kg(profile())
        assert graph.num_triples <= 300
        assert graph.num_triples >= 0.8 * 300  # dedup losses are bounded

    def test_splits_are_disjoint(self):
        graph = generate_kg(profile())
        assert len(graph.train.intersection(graph.valid)) == 0
        assert len(graph.train.intersection(graph.test)) == 0
        assert len(graph.valid.intersection(graph.test)) == 0

    def test_heldout_entities_seen_in_train(self):
        """No valid/test triple may reference an entity unseen in training."""
        graph = generate_kg(profile())
        seen = set(graph.train.unique_entities().tolist())
        for split in (graph.valid, graph.test):
            for s, _, o in split:
                assert s in seen and o in seen

    def test_heldout_relations_seen_in_train(self):
        graph = generate_kg(profile())
        seen = set(graph.train.unique_relations().tolist())
        for split in (graph.valid, graph.test):
            for _, r, _ in split:
                assert r in seen

    def test_closure_increases_clustering(self):
        sparse = generate_kg(profile(triangle_closure_prob=0.0, seed=9))
        dense = generate_kg(profile(triangle_closure_prob=0.4, seed=9))
        cc_sparse = GraphStatistics(sparse.train, backend="sparse").average_clustering
        cc_dense = GraphStatistics(dense.train, backend="sparse").average_clustering
        assert cc_dense > cc_sparse

    def test_popularity_skew(self):
        """With a strong Zipf exponent some entities dominate frequency."""
        graph = generate_kg(profile(popularity_exponent=1.2, num_triples=400))
        stats = GraphStatistics(graph.train, backend="sparse")
        freq = stats.subject_frequency + stats.object_frequency
        top_share = np.sort(freq)[::-1][:5].sum() / freq.sum()
        assert top_share > 0.2

    def test_metadata_recorded(self):
        graph = generate_kg(profile())
        assert graph.metadata["profile"] == "test"
        assert graph.metadata["seed"] == 3
        assert graph.metadata["entity_types"].shape == (50,)


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(10, 60),
    k=st.integers(1, 6),
    seed=st.integers(0, 1000),
)
def test_generated_graphs_always_valid(n, k, seed):
    """Any sane profile yields a structurally consistent graph."""
    graph = generate_kg(
        KGProfile(
            name="prop",
            num_entities=n,
            num_relations=k,
            num_triples=min(5 * n, n * n * k // 4),
            num_types=3,
            seed=seed,
        )
    )
    assert graph.num_entities == n
    assert graph.num_relations == k
    arr = graph.train.array
    if arr.size:
        assert arr[:, [0, 2]].max() < n
        assert arr[:, 1].max() < k
    # Splits disjoint.
    assert len(graph.train.intersection(graph.valid)) == 0
    assert len(graph.valid.intersection(graph.test)) == 0
