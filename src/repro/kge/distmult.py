"""DistMult (Yang et al., 2014): diagonal bilinear scoring.

``f(s, r, o) = sᵀ diag(r) o`` — RESCAL with a diagonality constraint,
which restricts it to symmetric relation modelling.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .base import KGEModel, register_model

__all__ = ["DistMult"]


@register_model("distmult")
class DistMult(KGEModel):
    """Diagonal bilinear factorisation model."""

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        s_e = self.entity_embeddings(s)
        r_e = self.relation_embeddings(r)
        o_e = self.entity_embeddings(o)
        return (s_e * r_e * o_e).sum(axis=-1)

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        s_e = self.entity_embeddings(s)
        r_e = self.relation_embeddings(r)
        return (s_e * r_e) @ self.entity_embeddings.weight.T

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        r_e = self.relation_embeddings(r)
        o_e = self.entity_embeddings(o)
        return (r_e * o_e) @ self.entity_embeddings.weight.T
