"""Baseline files: adopt the analyzer on a tree with known findings.

A baseline records fingerprints of accepted findings; subsequent runs
report only findings *not* in the baseline, so CI can gate on "no new
violations" while the backlog is burned down.  Fingerprints are
``(rule_id, path, message)`` — deliberately line-free, so unrelated
edits that shift code do not resurrect baselined findings.
"""

from __future__ import annotations

import json
from pathlib import Path

from .findings import Finding

__all__ = [
    "fingerprint",
    "load_baseline",
    "match_baseline",
    "render_baseline",
    "write_baseline",
]

_BASELINE_VERSION = 1

Fingerprint = tuple[str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    return (finding.rule_id, Path(finding.path).as_posix(), finding.message)


def render_baseline(findings: list[Finding]) -> str:
    entries = sorted(
        {
            (rule_id, path, message)
            for rule_id, path, message in map(fingerprint, findings)
        }
    )
    payload = {
        "version": _BASELINE_VERSION,
        "findings": [
            {"rule_id": rule_id, "path": path, "message": message}
            for rule_id, path, message in entries
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(findings: list[Finding], path: Path | str) -> None:
    Path(path).write_text(render_baseline(findings), encoding="utf-8")


def load_baseline(path: Path | str) -> frozenset[Fingerprint]:
    """Fingerprint set from a baseline file; raises ValueError on junk."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise ValueError(f"not a repro-lint baseline file: {path}")
    out = set()
    for entry in payload["findings"]:
        out.add((entry["rule_id"], entry["path"], entry["message"]))
    return frozenset(out)


def match_baseline(
    findings: list[Finding], baseline: frozenset[Fingerprint]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into (new, baselined)."""
    new: list[Finding] = []
    known: list[Finding] = []
    for finding in findings:
        (known if fingerprint(finding) in baseline else new).append(finding)
    return new, known
