"""RPR008 — dense gradient reads on possibly-sparse parameters.

With the row-sparse training fast path, ``param.grad`` on an
embedding-style parameter may hold a
:class:`~repro.autograd.sparse.SparseGrad` instead of a dense ndarray.
Indexing it, doing arithmetic on it, or passing it to a numpy routine
assumes a dense array and breaks the moment the ``sparse_grad`` flag is
enabled.  Inside the ``repro.kge`` and ``repro.autograd`` scopes, any
function that reads ``.grad`` in such a dense position must visibly
handle the sparse case — mention ``SparseGrad`` (an ``isinstance``
dispatch or a type annotation), call one of its conversion helpers
(``to_dense``/``add_into_dense``/``norm_squared``), or settle optimizer
state with ``flush()`` first.

Functions named ``backward`` are exempt: they are the tape engine's own
plumbing, pass gradients through opaquely, and are already policed by
RPR004.  ``x.grad is None`` checks and ``isinstance`` dispatches do not
count as dense reads.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, register_rule

__all__ = ["SparseGradReadRule"]

_SCOPES = ("repro.kge", "repro.autograd")
#: Calling any of these marks a function as sparse-aware.
_SPARSE_HANDLERS = frozenset({"flush", "to_dense", "add_into_dense", "norm_squared"})


def _in_scope(module: str) -> bool:
    return any(
        module == scope or module.startswith(scope + ".") for scope in _SCOPES
    )


def _handles_sparse(func: ast.AST) -> bool:
    """Whether the function visibly accounts for SparseGrad gradients."""
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id == "SparseGrad":
            return True
        if isinstance(node, ast.Attribute) and (
            node.attr == "SparseGrad" or node.attr in _SPARSE_HANDLERS
        ):
            return True
    return False


def _iter_local(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested functions."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _dense_read_positions(node: ast.AST) -> tuple[ast.expr, ...]:
    """Child expressions of ``node`` that are consumed as dense arrays."""
    if isinstance(node, ast.Subscript):
        return (node.value,)
    if isinstance(node, ast.BinOp):
        return (node.left, node.right)
    if isinstance(node, ast.UnaryOp):
        return (node.operand,)
    if isinstance(node, ast.AugAssign):
        return (node.value,)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "isinstance":
            return ()
        return tuple(node.args) + tuple(kw.value for kw in node.keywords)
    return ()


def _grad_reads(func: ast.AST) -> Iterator[ast.Attribute]:
    for node in _iter_local(func):
        for child in _dense_read_positions(node):
            if (
                isinstance(child, ast.Attribute)
                and child.attr == "grad"
                and isinstance(child.ctx, ast.Load)
            ):
                yield child


@register_rule
class SparseGradReadRule(Rule):
    rule_id = "RPR008"
    name = "sparse-grad-reads"
    description = (
        "dense .grad reads in kge/autograd must handle SparseGrad, "
        "densify, or flush() first"
    )
    rationale = (
        "The row-sparse training fast path leaves ``.grad`` holding a "
        "SparseGrad accumulator between flushes; code that indexes or "
        "norms it as a dense array either crashes or, worse, reads "
        "stale rows.  Every dense read must prove the gradient is "
        "dense first."
    )
    example = (
        "norm = np.linalg.norm(p.grad)        # RPR008: may be sparse\n"
        "\n"
        "p.flush()\n"
        "norm = np.linalg.norm(p.grad)        # dense by construction\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "backward":
                continue
            if _handles_sparse(node):
                continue
            for read in _grad_reads(node):
                yield self.finding(
                    ctx,
                    read,
                    ".grad may be a SparseGrad here; index/arithmetic/numpy "
                    "use assumes a dense array — dispatch on "
                    "isinstance(..., SparseGrad), densify with to_dense(), "
                    "or flush() the optimizer before reading",
                )
