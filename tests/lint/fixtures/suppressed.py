"""Suppression fixture: line-scoped disables for RPR001."""

import numpy as np

inline = np.random.rand(3)  # lint: disable=RPR001
# The next line is excused by a standalone marker comment.
# lint: disable=all
preceding = np.random.rand(3)
leaked = np.random.rand(3)
