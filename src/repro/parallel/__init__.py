"""repro.parallel — stdlib-only multiprocess execution fabric.

The paper's evaluation is embarrassingly parallel: the experiment matrix
is a grid of independent (dataset × model × strategy) cells, discovery
iterates independent relations, and the hyperparameter sweep iterates
independent grid points.  This package executes those units across a
spawn-based process pool while preserving two hard guarantees:

1. **Determinism** — results are bit-identical to the serial code path.
   Merging happens in submission order and every unit derives its RNG
   from the campaign seed alone (:func:`~repro.resilience.spawn_stream`),
   never from which worker ran it or when.
2. **Crash safety** — the :class:`~repro.resilience.RunJournal` remains
   the source of truth exactly as in the serial runner: attempts are
   journalled before dispatch, worker deaths consume attempt budget, and
   resumed campaigns replay completed cells bit-identically.

Model parameters travel through :class:`SharedEmbeddingStore`
(:mod:`multiprocessing.shared_memory`): workers score against zero-copy
read-only views instead of per-process pickled copies.

Layering: sits above :mod:`repro.kge`, :mod:`repro.resilience` and
:mod:`repro.obs`; the experiment layers import it lazily at call time
(``procs > 1``) and worker entry points live in
:mod:`repro.parallel.workers`.
"""

from .scheduler import Cell, CellOutcome, ParallelScheduler, WorkerCrashError
from .shared import ArraySpec, ModelHandle, SharedEmbeddingStore, attach_model

__all__ = [
    "Cell",
    "CellOutcome",
    "ParallelScheduler",
    "WorkerCrashError",
    "ArraySpec",
    "ModelHandle",
    "SharedEmbeddingStore",
    "attach_model",
]
