"""RPR003 bad fixture: in-place Tensor.data write outside the optim layer."""


def clamp_weights(tensor, limit):
    tensor.data[:] = limit
    return tensor
