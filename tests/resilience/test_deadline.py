"""Deadline unit tests — all on an injected clock, no real waiting."""

from __future__ import annotations

import pytest

from repro.resilience import (
    Deadline,
    DeadlineExceededError,
    RetryPolicy,
    with_retries,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_after_rejects_non_positive_budgets(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline.after(0.0)
        with pytest.raises(ValueError, match="positive"):
            Deadline.after(-5.0)

    def test_remaining_counts_down_and_goes_negative(self):
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock=clock)
        assert deadline.remaining() == 10.0
        assert not deadline.expired()
        clock.advance(7.0)
        assert deadline.remaining() == 3.0
        clock.advance(5.0)
        assert deadline.remaining() == -2.0
        assert deadline.expired()

    def test_check_passes_then_raises_with_context(self):
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock=clock)
        deadline.check("cell")  # in budget: silent
        clock.advance(12.5)
        with pytest.raises(DeadlineExceededError, match="cell") as excinfo:
            deadline.check("cell")
        assert excinfo.value.budget == 10.0
        assert excinfo.value.overdue == pytest.approx(2.5)

    def test_deadline_error_is_a_timeout(self):
        # Callers using stdlib idioms (except TimeoutError) must catch it.
        assert issubclass(DeadlineExceededError, TimeoutError)


class TestRetryDeadlineCooperation:
    def test_no_attempt_starts_past_the_deadline(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        attempts = []

        def fn(attempt):
            attempts.append(attempt)
            clock.advance(6.0)  # first attempt alone blows the budget
            raise RuntimeError("boom")

        with pytest.raises(DeadlineExceededError):
            with_retries(
                fn,
                RetryPolicy(max_attempts=5),
                clock=clock,
                sleep=lambda s: None,
                deadline=deadline,
            )
        assert attempts == [0]

    def test_backoff_that_would_overshoot_raises_instead_of_sleeping(self):
        clock = FakeClock()
        deadline = Deadline.after(10.0, clock=clock)
        slept = []

        def fn(attempt):
            clock.advance(4.0)
            raise RuntimeError("boom")

        # After attempt 0 (t=4) there are 6s left; an 8s backoff would
        # outlast the deadline, so the loop raises without sleeping.
        with pytest.raises(DeadlineExceededError, match="backoff") as excinfo:
            with_retries(
                fn,
                RetryPolicy(max_attempts=3, base_delay=8.0, multiplier=1.0),
                clock=clock,
                sleep=slept.append,
                deadline=deadline,
            )
        assert slept == []
        assert excinfo.value.budget == 10.0
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_deadline_with_headroom_never_interferes(self):
        clock = FakeClock()
        deadline = Deadline.after(1000.0, clock=clock)

        def fn(attempt):
            clock.advance(1.0)
            if attempt < 2:
                raise RuntimeError("boom")
            return "ok"

        result = with_retries(
            fn,
            RetryPolicy(max_attempts=3, base_delay=1.0),
            clock=clock,
            sleep=lambda s: clock.advance(s),
            deadline=deadline,
        )
        assert result == "ok"
