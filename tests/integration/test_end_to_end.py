"""Integration tests: the paper's qualitative findings on a real pipeline.

These train a model on the small fixture graph and check the *relative*
behaviour of the sampling strategies — the content of the paper's summary
of findings (§4.2.4).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import compare_results, discover_facts
from repro.kg import GraphStatistics
from repro.kge import ModelConfig, TrainConfig, evaluate_ranking, fit


@pytest.fixture(scope="module")
def trained(small_graph):
    result = fit(
        small_graph,
        ModelConfig("distmult", dim=24, seed=0),
        TrainConfig(
            job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.05,
            label_smoothing=0.1,
        ),
    )
    return result.model


@pytest.fixture(scope="module")
def all_results(trained, small_graph):
    stats = GraphStatistics(small_graph.train)
    return {
        name: discover_facts(
            trained, small_graph, strategy=name, top_n=30, max_candidates=200,
            seed=0, stats=stats,
        )
        for name in (
            "uniform_random",
            "entity_frequency",
            "graph_degree",
            "cluster_coefficient",
            "cluster_triangles",
        )
    }


class TestModelQuality:
    def test_model_is_usable(self, trained, small_graph):
        metrics = evaluate_ranking(trained, small_graph, split="test")
        random_mrr = float(np.mean(1.0 / np.arange(1, small_graph.num_entities + 1)))
        assert metrics.mrr > 3 * random_mrr


class TestPaperFindings:
    def test_frequency_beats_uniform_on_quality(self, all_results):
        """§4.2.2: ENTITY FREQUENCY outperforms UNIFORM RANDOM."""
        assert (
            all_results["entity_frequency"].mrr()
            > all_results["uniform_random"].mrr()
        )

    def test_popularity_strategies_beat_uniform(self, all_results):
        """§4.2.4: popularity-correlated strategies yield better facts."""
        uniform = all_results["uniform_random"].mrr()
        assert all_results["graph_degree"].mrr() > uniform
        assert all_results["cluster_triangles"].mrr() > uniform

    def test_uniform_and_cc_are_bottom_two(self, all_results):
        """§4.2.2: UNIFORM RANDOM and CLUSTERING COEFFICIENT underperform."""
        ordered = sorted(all_results.items(), key=lambda kv: kv[1].mrr())
        bottom_two = {ordered[0][0], ordered[1][0]}
        assert bottom_two <= {"uniform_random", "cluster_coefficient"}

    def test_triangles_top_fact_count(self, all_results):
        """§4.2.3: CLUSTERING TRIANGLES consistently yields many facts."""
        counts = {name: r.num_facts for name, r in all_results.items()}
        top_two = sorted(counts, key=counts.get, reverse=True)[:2]
        assert "cluster_triangles" in top_two

    def test_every_fact_outside_training_graph(self, all_results, small_graph):
        for result in all_results.values():
            if result.num_facts:
                assert not small_graph.train.contains(result.facts).any()

    def test_compare_results_ranks_by_quality(self, all_results):
        rows = compare_results(all_results)
        mrrs = [row["mrr"] for row in rows]
        assert mrrs == sorted(mrrs, reverse=True)


class TestModelStrategyInteraction:
    def test_second_model_preserves_frequency_advantage(self, small_graph):
        """§4: the EF > UR finding is not specific to one KGE model."""
        result = fit(
            small_graph,
            ModelConfig("complex", dim=24, seed=0),
            TrainConfig(
                job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.05,
                label_smoothing=0.1,
            ),
        )
        stats = GraphStatistics(small_graph.train)
        ef = discover_facts(
            result.model, small_graph, strategy="entity_frequency",
            top_n=30, max_candidates=200, seed=0, stats=stats,
        )
        ur = discover_facts(
            result.model, small_graph, strategy="uniform_random",
            top_n=30, max_candidates=200, seed=0, stats=stats,
        )
        assert ef.mrr() > ur.mrr()
