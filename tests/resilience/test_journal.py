"""Run-journal tests: durable appends, torn-line tolerance, fingerprints."""

from __future__ import annotations

import json

from repro.resilience import RunJournal, error_fingerprint


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("cell_started", cell="a/b/c", attempt=1)
        journal.append("cell_succeeded", cell="a/b/c", row={"mrr": 0.25})
        view = journal.read()
        assert [record["event"] for record in view.records] == [
            "cell_started",
            "cell_succeeded",
        ]
        assert view.records[1]["row"] == {"mrr": 0.25}
        assert view.corrupt_lines == 0

    def test_missing_file_reads_empty(self, tmp_path):
        view = RunJournal(tmp_path / "absent.jsonl").read()
        assert view.records == []
        assert view.corrupt_lines == 0

    def test_floats_roundtrip_bit_exactly(self, tmp_path):
        # Resume replays recorded rows; float repr → JSON → float must be
        # the identity, or "bit-identical resumed reports" is impossible.
        value = 0.1 + 0.2  # famously not 0.3
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("x", value=value, nested={"v": 1.0 / 3.0})
        record = journal.read().records[0]
        assert record["value"] == value
        assert record["nested"]["v"] == 1.0 / 3.0

    def test_append_creates_parent_directories(self, tmp_path):
        journal = RunJournal(tmp_path / "deep" / "run.jsonl")
        journal.append("x")
        assert journal.path.is_file()


class TestTornLines:
    def test_torn_trailing_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.append("cell_started", cell="a")
        journal.append("cell_succeeded", cell="a")
        # Simulate a crash mid-append: a truncated JSON line at the tail.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "cell_start')
        view = journal.read()
        assert len(view.records) == 2
        assert view.corrupt_lines == 1

    def test_non_object_lines_count_as_corrupt(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('[1, 2, 3]\n{"event": "ok"}\n\n', encoding="utf-8")
        view = RunJournal(path).read()
        assert [record["event"] for record in view.records] == ["ok"]
        assert view.corrupt_lines == 1

    def test_records_survive_as_plain_json_lines(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("cell_started", cell="a/b/c")
        line = journal.path.read_text(encoding="utf-8").strip()
        assert json.loads(line) == {"event": "cell_started", "cell": "a/b/c"}


class TestByEvent:
    def test_filters_on_event_name(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.append("cell_started", cell="a")
        journal.append("cell_failed", cell="a")
        journal.append("cell_started", cell="b")
        view = journal.read()
        assert len(view.by_event("cell_started")) == 2
        assert len(view.by_event("cell_failed")) == 1
        assert view.by_event("nonexistent") == []


class TestErrorFingerprint:
    def test_type_and_first_line(self):
        error = ValueError("bad value\nwith a second line")
        assert error_fingerprint(error) == "ValueError: bad value"

    def test_empty_message(self):
        assert error_fingerprint(KeyError()) == "KeyError: "

    def test_truncates_to_limit(self):
        error = RuntimeError("x" * 500)
        assert len(error_fingerprint(error, limit=50)) == 50
