"""RPR012 bad fixture: summary() keys off the canonical vocabulary."""


class SamplingReport:
    def summary(self):
        return {
            "rank_seconds": self.rank,
            "facts_count": self.facts,
        }

    def to_dict(self):
        return self.summary()

    def to_json(self):
        return "{}"


class LegacyReport:
    def summary(self):
        return {
            "train_sec": self.train,
            "num_facts": self.facts,
            "rank": self.rank,
        }

    def to_dict(self):
        return self.summary()

    def to_json(self):
        return "{}"
