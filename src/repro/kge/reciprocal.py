"""Reciprocal-relations training (Lacroix et al., 2018; LibKGE's default
for ConvE-style models).

The wrapped model allocates ``2·K`` relation embeddings: relation ``r``
for ``(s, r, o)`` queries and ``r + K`` for the inverted query
``(o, r⁻¹, s)``.  Subject-side scoring then *reuses the object-side code
path* with the reciprocal relation id, which lets purely ``score_sp``
models (ConvE) answer both directions and typically improves MRR for the
others.

Usage::

    model = ReciprocalWrapper.create("conve", num_entities=N,
                                     num_relations=K, dim=32)
    train_model(model, graph, TrainConfig(job="kvsall", loss="bce"))

Training jobs see the wrapper like any other model; the wrapper augments
``score_po`` transparently and hides the doubled relation space.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .base import KGEModel, create_model

__all__ = ["ReciprocalWrapper"]


class ReciprocalWrapper(KGEModel):
    """Present a ``2·K``-relation inner model as a ``K``-relation model."""

    model_name = "reciprocal"

    def __init__(self, inner: KGEModel) -> None:
        if inner.num_relations % 2 != 0:
            raise ValueError(
                "inner model must have an even relation count (2·K); got "
                f"{inner.num_relations}"
            )
        # Deliberately do NOT call super().__init__: the wrapper owns no
        # embeddings of its own.  Initialise the Module plumbing only.
        self.training = True
        self.inner = inner
        self.num_entities = inner.num_entities
        self.num_relations = inner.num_relations // 2
        self.dim = inner.dim
        self.seed = inner.seed

    @classmethod
    def create(
        cls,
        name: str,
        num_entities: int,
        num_relations: int,
        dim: int,
        seed: int = 0,
        **kwargs,
    ) -> "ReciprocalWrapper":
        """Build an inner model with doubled relations and wrap it."""
        inner = create_model(
            name,
            num_entities=num_entities,
            num_relations=2 * num_relations,
            dim=dim,
            seed=seed,
            **kwargs,
        )
        return cls(inner)

    # ------------------------------------------------------------------
    # Scoring: forward queries use r, inverted queries use r + K.
    # ------------------------------------------------------------------
    def _reciprocal(self, r: np.ndarray) -> np.ndarray:
        return np.asarray(r, dtype=np.int64) + self.num_relations

    def score_spo(self, s: np.ndarray, r: np.ndarray, o: np.ndarray) -> Tensor:
        return self.inner.score_spo(s, r, o)

    def score_sp(self, s: np.ndarray, r: np.ndarray) -> Tensor:
        return self.inner.score_sp(s, r)

    def score_po(self, r: np.ndarray, o: np.ndarray) -> Tensor:
        return self.inner.score_sp(o, self._reciprocal(r))

    def scores_po(self, r: np.ndarray, o: np.ndarray) -> np.ndarray:
        return self.inner.scores_sp(np.asarray(o, dtype=np.int64), self._reciprocal(r))

    def scores_sp(self, s: np.ndarray, r: np.ndarray) -> np.ndarray:
        return self.inner.scores_sp(s, r)

    # ------------------------------------------------------------------
    # Module plumbing: delegate to the inner model.
    # ------------------------------------------------------------------
    def parameters(self):
        return self.inner.parameters()

    def modules(self):
        yield self
        yield from self.inner.modules()

    def train(self):
        self.training = True
        self.inner.train()
        return self

    def eval(self):
        self.training = False
        self.inner.eval()
        return self

    def state_dict(self):
        return self.inner.state_dict()

    def load_state_dict(self, state):
        self.inner.load_state_dict(state)

    def post_batch_hook(self) -> None:
        self.inner.post_batch_hook()

    def entity_matrix(self) -> np.ndarray:
        return self.inner.entity_matrix()

    def relation_matrix(self) -> np.ndarray:
        return self.inner.relation_matrix()

    def augment_training_triples(self, triples: np.ndarray) -> np.ndarray:
        """Training triples plus their reciprocal counterparts.

        ``(s, r, o)`` additionally yields ``(o, r + K, s)`` so the inner
        model learns both directions; training jobs that consume the
        *graph's* triples directly should pass them through this method.
        """
        triples = np.asarray(triples, dtype=np.int64)
        inverted = triples[:, [2, 1, 0]].copy()
        inverted[:, 1] += self.num_relations
        return np.concatenate([triples, inverted], axis=0)

    def __repr__(self) -> str:
        return f"ReciprocalWrapper({self.inner!r})"
