"""Resilience overhead — guards + journalling on fault-free training.

The divergence guard runs once per epoch (loss/parameter/grad-norm
checks plus an in-memory snapshot under the rollback/retry policies) and
the campaign journal fsyncs a handful of JSON lines per cell.  Both must
be cheap enough to leave armed everywhere: this benchmark measures a
fault-free FB15K-237-replica DistMult training run with and without
them and asserts the combined overhead stays under 3%.

It also re-checks the bit-identity contract: on a clean run the guard
only observes, so the guarded and unguarded models must be equal down to
the last bit.

The measurements are written to
``benchmarks/results/BENCH_resilience.json`` as a committed artefact.
"""

from __future__ import annotations

import json
import time

import numpy as np
from common import RESULTS_DIR, save_and_print

from repro.experiments import default_train_config, format_table
from repro.kg import load_dataset
from repro.kge import train_model
from repro.kge.base import create_model
from repro.resilience import GuardConfig, RunJournal

#: Overhead budget on fault-free training (guards + journal records).
OVERHEAD_BUDGET = 0.03

#: Journal records a campaign writes for one successful cell.
RECORDS_PER_CELL = 2  # cell_started + cell_succeeded


def _train(graph, config, guard=None):
    model = create_model(
        "distmult",
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=32,
        seed=0,
    )
    result = train_model(model, graph, config, guard=guard)
    return model, result


def _time(fn, repeats: int = 3):
    """Best-of-N wall-clock and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def test_resilience_overhead(tmp_path):
    graph = load_dataset("fb15k237-like")
    config = default_train_config("distmult").with_(epochs=20)
    journal = RunJournal(tmp_path / "overhead.jsonl")

    unguarded_s, (unguarded_model, _) = _time(lambda: _train(graph, config))

    def guarded_cell():
        # One campaign cell: journal bracketing + fully armed guard.
        journal.append("cell_started", cell="fb15k237-like/distmult/bench")
        out = _train(graph, config, guard=GuardConfig(policy="retry"))
        journal.append("cell_succeeded", cell="fb15k237-like/distmult/bench")
        return out

    guarded_s, (guarded_model, guarded_result) = _time(guarded_cell)
    overhead = guarded_s / unguarded_s - 1.0

    # On a fault-free run the guard observes without touching any RNG:
    # the trained models are bit-identical and the report is clean.
    np.testing.assert_array_equal(
        unguarded_model.entity_matrix(), guarded_model.entity_matrix()
    )
    report = guarded_result.guard_report
    assert report is not None and report.clean
    assert len(report.grad_norms) == config.epochs
    assert overhead < OVERHEAD_BUDGET

    rows = [
        {
            "run": "unguarded",
            "epochs": config.epochs,
            "runtime_s": round(unguarded_s, 3),
            "overhead": "-",
        },
        {
            "run": "guard(retry) + journal",
            "epochs": config.epochs,
            "runtime_s": round(guarded_s, 3),
            "overhead": f"{overhead:+.2%}",
        },
    ]

    payload = {
        "dataset": "fb15k237-like",
        "model": "distmult",
        "epochs": config.epochs,
        "guard_policy": "retry",
        "journal_records_per_cell": RECORDS_PER_CELL,
        "unguarded_seconds": unguarded_s,
        "guarded_seconds": guarded_s,
        "overhead_fraction": overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "bit_identical_models": True,
        "guard_events": len(report.events),
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    save_and_print(
        "resilience_overhead",
        format_table(
            rows,
            title="Fault-free training overhead of guards + journalling "
            "(fb15k237-like, distmult, best of 3)",
        ),
    )
