"""Tests for the exhaustive CHAI-style baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import RuleFilter, discover_facts, exhaustive_discover_facts
from repro.kg import encode_keys


class TestExhaustive:
    @pytest.fixture(scope="class")
    def result(self, trained_distmult, tiny_graph):
        return exhaustive_discover_facts(
            trained_distmult, tiny_graph, top_n=10, relations=[0],
        )

    def test_facts_not_in_training(self, result, tiny_graph):
        if result.num_facts:
            assert not tiny_graph.train.contains(result.facts).any()

    def test_ranks_within_top_n(self, result):
        assert (result.ranks <= 10).all()

    def test_covers_full_complement(self, result, tiny_graph):
        n = tiny_graph.num_entities
        expected = n * (n - 1) - len(tiny_graph.train.by_relation(0))
        # Self-loops among training triples are possible; allow exactness
        # within the self-loop count.
        assert abs(result.candidates_generated - expected) <= n

    def test_strategy_label(self, result):
        assert result.strategy == "exhaustive"

    def test_sampled_facts_subset_of_exhaustive(
        self, trained_distmult, tiny_graph, result
    ):
        """Every sampled discovery is also found by the exhaustive sweep
        (same relation, same top_n) — sampling only narrows coverage."""
        sampled = discover_facts(
            trained_distmult, tiny_graph, strategy="entity_frequency",
            relations=[0], top_n=10, max_candidates=200, seed=0,
        )
        if sampled.num_facts == 0:
            pytest.skip("sampling found nothing to compare")
        n, k = tiny_graph.num_entities, tiny_graph.num_relations
        exhaustive_keys = set(encode_keys(result.facts, n, k).tolist())
        sampled_keys = set(encode_keys(sampled.facts, n, k).tolist())
        assert sampled_keys <= exhaustive_keys


class TestWithRules:
    def test_rules_reduce_candidates(self, trained_distmult, tiny_graph):
        plain = exhaustive_discover_facts(
            trained_distmult, tiny_graph, top_n=10, relations=[0],
        )
        rules = RuleFilter(tiny_graph.train)
        pruned = exhaustive_discover_facts(
            trained_distmult, tiny_graph, top_n=10, relations=[0],
            rule_filter=rules,
        )
        assert pruned.candidates_generated < plain.candidates_generated
        assert pruned.strategy == "exhaustive+rules"

    def test_pruned_facts_respect_rules(self, trained_distmult, tiny_graph):
        rules = RuleFilter(tiny_graph.train)
        pruned = exhaustive_discover_facts(
            trained_distmult, tiny_graph, top_n=10, relations=[0],
            rule_filter=rules,
        )
        if pruned.num_facts:
            assert rules.accept_mask(pruned.facts).all()


class TestCap:
    def test_max_candidates_cap(self, trained_distmult, tiny_graph):
        result = exhaustive_discover_facts(
            trained_distmult, tiny_graph, top_n=10, relations=[0],
            max_candidates_per_relation=50, seed=1,
        )
        assert result.candidates_generated == 50

    def test_cap_is_deterministic(self, trained_distmult, tiny_graph):
        kwargs = dict(top_n=10, relations=[0], max_candidates_per_relation=50, seed=2)
        a = exhaustive_discover_facts(trained_distmult, tiny_graph, **kwargs)
        b = exhaustive_discover_facts(trained_distmult, tiny_graph, **kwargs)
        np.testing.assert_array_equal(a.facts, b.facts)
