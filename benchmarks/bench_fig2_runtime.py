"""Figure 2 — runtime of the discovery algorithm (paper §4.2.1).

One table per dataset: rows are strategies (UR/EF/GD/CC/CT), columns are
the five KGE models, cells are total runtime in seconds.  Expected shape:

* UR/EF/GD cheapest; CC/CT pay an extra weight-computation cost
  (triangle counting), visible in the ``weight_s`` column;
* WN18RR-like terminates fastest (few relations, sparse graph);
* the KGE model choice barely moves the runtime.
"""

from __future__ import annotations

import numpy as np
from common import (
    MAX_CANDIDATES_DEFAULT,
    TOP_N_DEFAULT,
    matrix_rows,
    save_and_print,
)

from repro.discovery import STRATEGY_ABBREVIATIONS, discover_facts
from repro.experiments import format_table, get_trained_model, group_rows
from repro.kg import load_dataset


def test_fig2_runtime(benchmark):
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "transe", graph=graph)
    benchmark.pedantic(
        lambda: discover_facts(
            model, graph, strategy="uniform_random",
            top_n=TOP_N_DEFAULT, max_candidates=MAX_CANDIDATES_DEFAULT, seed=0,
        ),
        rounds=3,
        iterations=1,
    )

    rows = matrix_rows()
    sections = []
    for dataset, dataset_rows in group_rows(rows, "dataset").items():
        table_rows = []
        for strategy, strategy_rows in group_rows(dataset_rows, "strategy").items():
            row = {"strategy": STRATEGY_ABBREVIATIONS[strategy]}
            for r in strategy_rows:
                row[r.model] = round(r.runtime_seconds, 3)
            row["weight_s"] = round(
                float(np.mean([r.weight_seconds for r in strategy_rows])), 4
            )
            table_rows.append(row)
        sections.append(
            format_table(
                table_rows,
                title=f"Figure 2 — runtime seconds on {dataset} "
                f"(top_n={TOP_N_DEFAULT}, max_candidates={MAX_CANDIDATES_DEFAULT})",
            )
        )
    save_and_print("fig2_runtime", "\n\n".join(sections))

    # Shape check 1: triangle-based strategies pay more weight time than
    # the linear ones on every dataset.
    for dataset, dataset_rows in group_rows(rows, "dataset").items():
        by_strategy = group_rows(dataset_rows, "strategy")
        linear = np.mean(
            [r.weight_seconds for s in ("uniform_random", "entity_frequency",
                                        "graph_degree") for r in by_strategy[s]]
        )
        triangular = np.mean(
            [r.weight_seconds for s in ("cluster_coefficient",
                                        "cluster_triangles") for r in by_strategy[s]]
        )
        assert triangular > linear, dataset

    # Shape check 2: WN18RR-like has the shortest total runtime.
    totals = {
        dataset: sum(r.runtime_seconds for r in dataset_rows)
        for dataset, dataset_rows in group_rows(rows, "dataset").items()
    }
    assert totals["wn18rr-like"] == min(totals.values())
