"""The unified result/telemetry API: ``Reportable`` and deprecated keys.

Every result object in the codebase (``DiscoveryResult``, ``MatrixRow``,
``GuardReport``, ``RankingStats``, ...) satisfies the :class:`Reportable`
protocol: ``summary()`` returns a flat dict of scalars under canonical
names (durations ``*_seconds``, tallies ``*_count``), ``to_dict()``
returns the full serialisable payload, ``to_json()`` its JSON text.

Key renames follow the deprecation policy documented in
``docs/architecture.md``: ``summary()`` returns a
:class:`DeprecatedKeyDict` that still *resolves* the old names (with a
``DeprecationWarning``) but only iterates/serialises the canonical ones,
so downstream code keeps working for one release while new output is
uniformly named.
"""

from __future__ import annotations

import json
import warnings
from typing import Any, Mapping, Protocol, runtime_checkable

__all__ = ["Reportable", "ReportableMixin", "DeprecatedKeyDict", "json_default"]


@runtime_checkable
class Reportable(Protocol):
    """Structural protocol every result/telemetry object satisfies."""

    def summary(self) -> dict[str, Any]:
        """Flat scalar overview under canonical ``*_seconds``/``*_count`` keys."""
        ...

    def to_dict(self) -> dict[str, Any]:
        """Full JSON-serialisable payload (may nest)."""
        ...

    def to_json(self, *, indent: int | None = None) -> str:
        """``to_dict()`` rendered as JSON text."""
        ...


def json_default(obj: Any) -> Any:
    """``json.dumps`` fallback for numpy scalars/arrays inside payloads."""
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):
        return obj.item()
    if hasattr(obj, "tolist"):
        return obj.tolist()
    raise TypeError(f"{type(obj).__name__} is not JSON serialisable")


class ReportableMixin:
    """Default ``to_dict``/``to_json`` on top of a class's ``summary()``.

    Classes whose serialised payload is richer than the summary (e.g.
    ``MatrixRow``, whose ``to_dict`` feeds the campaign journal) override
    ``to_dict`` and keep the derived ``to_json``.
    """

    def summary(self) -> dict[str, Any]:
        raise NotImplementedError(f"{type(self).__name__} must implement summary()")

    def to_dict(self) -> dict[str, Any]:
        return dict(self.summary())

    def to_json(self, *, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent, default=json_default)


class DeprecatedKeyDict(dict):
    """A dict whose legacy key aliases still resolve, with a warning.

    Only canonical keys are stored, iterated and serialised; looking up an
    alias returns the canonical value and emits a ``DeprecationWarning``
    naming the replacement.  ``in`` succeeds silently for aliases so
    existing presence checks don't spam warnings.
    """

    def __init__(
        self,
        data: Mapping[str, Any],
        aliases: Mapping[str, str] | None = None,
        owner: str = "summary()",
    ) -> None:
        super().__init__(data)
        self._aliases = dict(aliases or {})
        self._owner = owner
        for old, new in self._aliases.items():
            if new not in self:
                raise KeyError(f"alias {old!r} points at missing canonical key {new!r}")

    def __missing__(self, key: str) -> Any:
        new = self._aliases.get(key)
        if new is None:
            raise KeyError(key)
        warnings.warn(
            f"{self._owner} key {key!r} is deprecated; use {new!r}",
            DeprecationWarning,
            stacklevel=2,
        )
        return self[new]

    def __contains__(self, key: object) -> bool:
        return dict.__contains__(self, key) or key in self._aliases

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default
