"""A unified wall-clock deadline threaded through the execution stack.

Before this type existed every layer spelled time budgets differently:
:class:`~repro.resilience.retry.RetryPolicy` had two float fields, the
scheduler had none (a hung worker blocked ``future.result()`` forever),
and campaign loops had no way to say "give each cell at most N
seconds".  A :class:`Deadline` is one immutable budget created at a
boundary (CLI flag, campaign start, cell dispatch) and *checked* at
every cooperative point below it.

Enforcement is layered by what each layer can actually do:

* serial code cannot preempt a running attempt, so it checks
  cooperatively — :func:`~repro.resilience.retry.with_retries` refuses
  to start an attempt past the deadline, and
  :func:`repro.discovery.discover_facts` checks between relations;
* the parallel scheduler holds a real kill switch — its watchdog
  (:mod:`repro.parallel.watchdog`) SIGKILLs workers that overshoot and
  charges the cell's attempt budget.

The clock is injectable (same contract as ``with_retries``) so deadline
logic is testable without waiting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from .errors import DeadlineExceededError

__all__ = ["Deadline"]


@dataclass(frozen=True)
class Deadline:
    """A fixed instant on ``clock`` by which work must finish."""

    at: float
    seconds: float
    clock: Callable[[], float] = field(
        default=time.monotonic, repr=False, compare=False
    )

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now on ``clock``."""
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        return cls(at=clock() + seconds, seconds=seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.at - self.clock()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, label: str = "deadline") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        remaining = self.remaining()
        if remaining <= 0.0:
            raise DeadlineExceededError(
                f"{label}: {self.seconds:.1f}s deadline exceeded "
                f"({-remaining:.1f}s overdue)",
                budget=self.seconds,
                overdue=-remaining,
            )
