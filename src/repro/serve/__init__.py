"""Discovery-as-a-service: the long-lived query server.

The ROADMAP's serving milestone: load trained models once, answer
link-prediction / fact-discovery / triple-classification queries from
many concurrent clients, and expose live Prometheus metrics.  See
``docs/architecture.md`` ("Serving") for the registry / coalescing /
shutdown flow and ``docs/api.md`` for the wire schema.

- :class:`ModelRegistry` — LRU catalogue of checksummed checkpoints with
  pin-safe eviction and warm per-model engines (:mod:`repro.serve.registry`)
- :class:`SingleFlight` — request coalescing (:mod:`repro.serve.coalesce`)
- :class:`ServeApp` / :class:`DiscoveryServer` — HTTP layer with bounded
  workers and graceful drain (:mod:`repro.serve.server`)
- :class:`ServeClient` — typed stdlib client (:mod:`repro.serve.client`)
"""

from .client import ServeClient, ServeClientError, error_from_envelope
from .coalesce import SingleFlight
from .registry import ModelEntry, ModelRegistry, RegistrySpec
from .server import DiscoveryServer, ServeApp, start_server

__all__ = [
    "ModelEntry",
    "ModelRegistry",
    "RegistrySpec",
    "SingleFlight",
    "ServeApp",
    "DiscoveryServer",
    "start_server",
    "ServeClient",
    "ServeClientError",
    "error_from_envelope",
]
