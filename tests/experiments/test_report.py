"""Tests for the ASCII table/series renderers."""

from __future__ import annotations

import pytest

from repro.experiments import ascii_bars, format_series, format_table, group_rows


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert "22" in lines[3]

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_title(self):
        assert format_table([{"a": 1}], title="T").splitlines()[0] == "T"

    def test_float_precision(self):
        text = format_table([{"v": 0.123456}], precision=2)
        assert "0.12" in text

    def test_large_floats_get_thousands_separator(self):
        assert "12,000" in format_table([{"v": 12000.0}])

    def test_nan_renders_dash(self):
        assert "-" in format_table([{"v": float("nan")}])

    def test_column_subset(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_missing_key_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert text  # renders without KeyError


class TestFormatSeries:
    def test_one_row_per_x(self):
        text = format_series("x", [1, 2], {"line": [0.1, 0.2]})
        assert len(text.splitlines()) == 4  # header + rule + 2 rows


class TestAsciiBars:
    def test_peak_gets_full_width(self):
        text = ascii_bars(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])

    def test_empty(self):
        assert "(no data)" in ascii_bars([], [])

    def test_all_zero_values(self):
        text = ascii_bars(["a"], [0.0])
        assert "a" in text


class TestGroupRows:
    def test_groups_dicts(self):
        rows = [{"k": "x", "v": 1}, {"k": "y", "v": 2}, {"k": "x", "v": 3}]
        grouped = group_rows(rows, "k")
        assert [r["v"] for r in grouped["x"]] == [1, 3]

    def test_groups_objects(self):
        class Row:
            def __init__(self, k):
                self.k = k

        grouped = group_rows([Row("a"), Row("b"), Row("a")], "k")
        assert len(grouped["a"]) == 2
