"""Tests for the CHAI-style rule filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import RuleFilter
from repro.kg import TripleSet


@pytest.fixture()
def kb() -> TripleSet:
    # Relation 0: subjects {0, 1}, objects {5, 6}; one object per subject
    # (functional).  Relation 1: subject 2 with three objects (not
    # functional).
    triples = [
        [0, 0, 5],
        [1, 0, 6],
        [2, 1, 5],
        [2, 1, 6],
        [2, 1, 7],
    ]
    return TripleSet(np.asarray(triples), 10, 2)


class TestMining:
    def test_domains_and_ranges(self, kb):
        rules = RuleFilter(kb)
        np.testing.assert_array_equal(rules.domain(0), [0, 1])
        np.testing.assert_array_equal(rules.range(0), [5, 6])
        np.testing.assert_array_equal(rules.domain(1), [2])
        np.testing.assert_array_equal(rules.range(1), [5, 6, 7])

    def test_functional_detection(self, kb):
        rules = RuleFilter(kb)
        assert 0 in rules.functional_relations
        assert 1 not in rules.functional_relations

    def test_unknown_relation_has_empty_domain(self, kb):
        rules = RuleFilter(kb)
        assert rules.domain(9).size == 0


class TestFiltering:
    def test_domain_violation_rejected(self, kb):
        rules = RuleFilter(kb)
        # Subject 9 never appears as a subject of relation 1.
        mask = rules.accept_mask(np.asarray([[9, 1, 5]]))
        assert not mask[0]

    def test_range_violation_rejected(self, kb):
        rules = RuleFilter(kb)
        mask = rules.accept_mask(np.asarray([[2, 1, 0]]))
        assert not mask[0]

    def test_functional_saturated_subject_rejected(self, kb):
        rules = RuleFilter(kb)
        # Subject 0 already has an object for functional relation 0.
        mask = rules.accept_mask(np.asarray([[0, 0, 6]]))
        assert not mask[0]

    def test_valid_nonfunctional_candidate_accepted(self, kb):
        rules = RuleFilter(kb)
        # Relation 1 is not functional; subject 2 may gain new objects from
        # the observed range.
        mask = rules.accept_mask(np.asarray([[2, 1, 5]]))
        assert mask[0]

    def test_filter_returns_accepted_rows(self, kb):
        rules = RuleFilter(kb)
        candidates = np.asarray([[2, 1, 5], [9, 1, 5], [2, 1, 0]])
        accepted = rules.filter(candidates)
        np.testing.assert_array_equal(accepted, [[2, 1, 5]])

    def test_empty_input(self, kb):
        rules = RuleFilter(kb)
        assert rules.accept_mask(np.zeros((0, 3))).shape == (0,)

    def test_threshold_controls_functionality(self, kb):
        # With a huge threshold even relation 1 counts as functional.
        rules = RuleFilter(kb, functional_threshold=10.0)
        assert 1 in rules.functional_relations
