"""Algorithm 1 of the paper: the ``discover_facts`` procedure.

For every relation in the graph, candidate triples are generated as the
mesh grid of sampled subject and object entities, filtered against the
known graph, ranked against their object-side corruptions by the KGE
model, and kept when they rank within ``top_n``.

The implementation mirrors the pseudocode faithfully:

* ``sample_size = ⌊√max_candidates⌋ + 10``  (line 4);
* generation repeats until ``max_candidates`` candidates exist or **5**
  iterations have passed (line 8) — the constant the paper deliberately
  does not tune;
* triples already present in the training graph are filtered (line 12);
* candidates ranked worse than ``top_n`` are dropped (line 15).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..autograd import no_grad
from ..kg.graph import KnowledgeGraph
from ..kg.stats import OBJECT, SUBJECT, GraphStatistics
from ..kg.triples import encode_keys
from ..kge.base import KGEModel
from ..kge.ranking import RANKING_STATS_ALIASES, RankingEngine
from ..obs import (
    ReportableMixin,
    flatten_spans,
    get_registry,
    span,
    span_tree_delta,
)
from ..resilience import Deadline, spawn_stream
from .config import DiscoveryConfig
from .strategies import SamplingStrategy, create_strategy

__all__ = [
    "DiscoveryResult",
    "RelationDiscovery",
    "discover_facts",
    "discover_relation",
    "MAX_GENERATION_ITERATIONS",
]

logger = logging.getLogger(__name__)

#: Algorithm 1's fixed iteration cap (line 8); the paper treats it as a
#: constant rather than a hyperparameter.
MAX_GENERATION_ITERATIONS = 5


@dataclass
class DiscoveryResult(ReportableMixin):
    """Output of one ``discover_facts`` run plus its runtime accounting."""

    facts: np.ndarray
    ranks: np.ndarray
    strategy: str
    top_n: int
    max_candidates: int
    candidates_generated: int
    generation_seconds: float
    ranking_seconds: float
    weight_seconds: float
    per_relation: dict[int, int] = field(default_factory=dict)
    ranking_stats: dict[str, float] = field(default_factory=dict)
    trace: dict[str, dict[str, float]] = field(default_factory=dict)

    @property
    def num_facts(self) -> int:
        return len(self.facts)

    @property
    def runtime_seconds(self) -> float:
        """Total runtime: weight computation + generation + ranking."""
        return self.weight_seconds + self.generation_seconds + self.ranking_seconds

    def mrr(self) -> float:
        """Mean reciprocal rank of the discovered facts (Equation 7)."""
        if self.ranks.size == 0:
            return 0.0
        return float((1.0 / self.ranks).mean())

    def efficiency_facts_per_hour(self) -> float:
        """The paper's efficiency metric: discovered facts per hour."""
        if self.runtime_seconds <= 0:
            return 0.0
        return self.num_facts / (self.runtime_seconds / 3600.0)

    def top_facts(self, limit: int | None = None) -> np.ndarray:
        """Facts sorted by rank (best first), optionally truncated."""
        order = np.argsort(self.ranks, kind="stable")
        if limit is not None:
            order = order[:limit]
        return self.facts[order]

    def labelled_facts(
        self, graph, limit: int | None = None
    ) -> list[tuple[str, str, str, float]]:
        """Discovered facts as ``(subject, relation, object, rank)`` labels.

        ``graph`` must be the :class:`~repro.kg.graph.KnowledgeGraph` the
        ids refer to.  Ordered best-rank first.
        """
        order = np.argsort(self.ranks, kind="stable")
        if limit is not None:
            order = order[:limit]
        out = []
        for idx in order:
            s, r, o = graph.label_triple(tuple(self.facts[idx]))
            out.append((s, r, o, float(self.ranks[idx])))
        return out

    def save_tsv(self, path, graph) -> None:
        """Write the labelled facts (with ranks) to a TSV file."""
        from pathlib import Path

        lines = [
            f"{s}\t{r}\t{o}\t{rank:g}"
            for s, r, o, rank in self.labelled_facts(graph)
        ]
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    def summary(self) -> dict[str, float]:
        """Flat metric dict for tables and benchmarks.

        Keys follow the canonical ``*_seconds``/``*_count`` naming.  The
        pre-observability aliases (``num_facts``, ``candidates_generated``,
        raw :class:`~repro.kge.ranking.RankingStats` counters) completed
        their deprecation cycle and no longer resolve; the ``num_facts``
        *attribute* remains as Python-level API.  When the run went
        through a :class:`~repro.kge.ranking.RankingEngine` the engine's
        counters are included, and when observability was enabled the
        run's span tree appears as flat ``span.<path>.wall_seconds``
        scalars.
        """
        out = {
            "strategy": self.strategy,
            "facts_count": self.num_facts,
            "mrr": self.mrr(),
            "runtime_seconds": self.runtime_seconds,
            "generation_seconds": self.generation_seconds,
            "ranking_seconds": self.ranking_seconds,
            "weight_seconds": self.weight_seconds,
            "efficiency_facts_per_hour": self.efficiency_facts_per_hour(),
            "candidates_generated_count": self.candidates_generated,
        }
        for legacy, value in self.ranking_stats.items():
            out[RANKING_STATS_ALIASES.get(legacy, legacy)] = value
        for path, node in self.trace.items():
            out[f"span.{path}.wall_seconds"] = node["wall_seconds"]
        return out


def _mesh_candidates(
    subjects: np.ndarray, relation: int, objects: np.ndarray
) -> np.ndarray:
    """All (s, r, o) combinations of the sampled entities (line 11)."""
    s_grid, o_grid = np.meshgrid(subjects, objects, indexing="ij")
    out = np.empty((s_grid.size, 3), dtype=np.int64)
    out[:, 0] = s_grid.ravel()
    out[:, 1] = relation
    out[:, 2] = o_grid.ravel()
    return out


@dataclass
class RelationDiscovery:
    """One relation's slice of a discovery run (the parallel unit of work)."""

    relation: int
    facts: np.ndarray
    ranks: np.ndarray
    candidates_generated: int
    generation_seconds: float
    ranking_seconds: float


def discover_relation(
    model: KGEModel,
    train,
    strategy: SamplingStrategy,
    relation: int,
    rng: np.random.Generator,
    top_n: int,
    max_candidates: int,
    sample_size: int,
    drop_self_loops: bool,
    rule_filter,
    engine: RankingEngine,
) -> RelationDiscovery:
    """Lines 8–15 of Algorithm 1 for a single relation.

    Module-level, with the RNG passed in explicitly, so the parallel
    fabric (:mod:`repro.parallel`) can dispatch individual relations to
    worker processes; the serial loop in :func:`discover_facts` runs
    exactly this code with exactly the same per-relation stream, which
    is what makes ``procs=N`` bit-identical to serial.
    """
    with span("discover.generate") as generate_span:
        local: list[np.ndarray] = []
        local_count = 0
        seen_keys = np.empty(0, dtype=np.int64)
        iterations = 0
        while (
            local_count < max_candidates
            and iterations < MAX_GENERATION_ITERATIONS
        ):
            subjects = strategy.sample(
                SUBJECT, sample_size, rng, relation=relation
            )
            objects = strategy.sample(
                OBJECT, sample_size, rng, relation=relation
            )
            candidates = _mesh_candidates(subjects, relation, objects)
            if drop_self_loops:
                candidates = candidates[candidates[:, 0] != candidates[:, 2]]
            # Line 12: filter triples already in G.
            candidates = candidates[~train.contains(candidates)]
            if rule_filter is not None:
                candidates = candidates[rule_filter.accept_mask(candidates)]
            # Deduplicate across iterations: vectorised probe against
            # the sorted seen-keys array (repeats *within* one mesh
            # batch are kept, exactly as the retired per-key Python
            # loop did).
            keys = encode_keys(
                candidates, train.num_entities, train.num_relations
            )
            fresh = ~np.isin(keys, seen_keys)
            candidates = candidates[fresh]
            seen_keys = np.union1d(seen_keys, keys[fresh])
            local.append(candidates)
            local_count += len(candidates)
            iterations += 1
        relation_candidates = (
            np.concatenate(local, axis=0)[:max_candidates]
            if local
            else np.zeros((0, 3), dtype=np.int64)
        )
    if len(relation_candidates) == 0:
        return RelationDiscovery(
            relation=relation,
            facts=np.zeros((0, 3), dtype=np.int64),
            ranks=np.zeros(0),
            candidates_generated=0,
            generation_seconds=generate_span.wall_seconds,
            ranking_seconds=0.0,
        )

    # Line 14: rank candidates against their corruptions (standard
    # filtered protocol per Bordes et al.), deduplicated by unique
    # (s, r) query.  Scoring is pure inference: no_grad keeps the
    # tape from recording backward closures for millions of
    # candidate scores.
    with span("rank") as rank_span:
        with no_grad():
            ranks = engine.compute_ranks(
                model,
                relation_candidates,
                filter_triples=train,
                side="object",
            )

    # Line 15: quality filter.
    keep = ranks <= top_n
    logger.debug(
        "relation %d: %d/%d candidates within top_n=%d",
        relation,
        int(keep.sum()),
        len(relation_candidates),
        top_n,
    )
    return RelationDiscovery(
        relation=relation,
        facts=relation_candidates[keep],
        ranks=ranks[keep],
        candidates_generated=len(relation_candidates),
        generation_seconds=generate_span.wall_seconds,
        ranking_seconds=rank_span.wall_seconds,
    )


def discover_facts(
    model: KGEModel,
    graph: KnowledgeGraph,
    strategy: str | SamplingStrategy = "entity_frequency",
    top_n: int = 500,
    max_candidates: int = 500,
    relations: list[int] | None = None,
    seed: int = 0,
    stats: GraphStatistics | None = None,
    drop_self_loops: bool = True,
    rule_filter: "RuleFilter | None" = None,
    engine: RankingEngine | None = None,
    workers: int = 1,
    cache_size: int = 128,
    procs: int = 1,
    config: DiscoveryConfig | None = None,
    deadline: Deadline | None = None,
    cell_deadline: float | None = None,
) -> DiscoveryResult:
    """Discover plausible missing facts from a trained KGE model.

    Parameters
    ----------
    model:
        Trained scoring model over ``graph``'s id spaces.
    graph:
        The knowledge graph used to train ``model``; its training split
        defines "seen" triples and the ranking filter.
    strategy:
        Sampling strategy name (see
        :func:`repro.discovery.strategies.available_strategies`) or a
        ready instance.
    top_n:
        Maximum accepted rank of a candidate against its object-side
        corruptions (quality threshold).
    max_candidates:
        Candidate budget per relation.
    relations:
        Relation ids to discover facts for; defaults to every relation in
        the training split.
    seed:
        Base seed for the entity sampler.  Every relation draws from its
        own stream, ``spawn_stream(seed, relation)``, so results are a
        pure function of ``(seed, relation)`` — independent of relation
        order and of how relations are distributed across processes.
    stats:
        Pre-computed :class:`GraphStatistics` (reused across runs so the
        weight-computation cost can also be measured in isolation).
    drop_self_loops:
        Skip candidates with ``s == o`` (AmpliGraph does the same).
    rule_filter:
        Optional :class:`~repro.discovery.rules.RuleFilter` applied to
        each candidate batch before ranking — the paper's §6 "pruning
        mechanisms" direction combining CHAI-style rules with sampling.
    engine:
        A shared :class:`~repro.kge.ranking.RankingEngine`; when omitted
        one is built from ``workers`` / ``cache_size``.  Results are
        identical either way — the engine only changes how ranking is
        computed, never what it returns.
    workers:
        Thread-pool width for scoring independent query chunks (only
        used when ``engine`` is omitted).
    cache_size:
        LRU score-row cache entries (only used when ``engine`` is
        omitted); lets later generation iterations reuse rows for
        re-sampled ``(s, r)`` queries.  Each entry holds two
        ``num_entities``-sized float64 rows.
    procs:
        Worker *process* count.  With ``procs > 1`` relations are
        dispatched across a spawn-based pool (:mod:`repro.parallel`)
        scoring against shared-memory parameter views; results are
        bit-identical to the serial path.  The model must be a
        registry-constructible :class:`KGEModel` (it is republished from
        its state dict), scoring runs in eval mode, and a passed-in
        ``engine`` is ignored — each worker builds its own from
        ``workers`` / ``cache_size``.
    config:
        Optional :class:`~repro.discovery.config.DiscoveryConfig`.  When
        given it replaces ``strategy``, ``top_n``, ``max_candidates``,
        ``seed``, ``drop_self_loops``, ``workers`` and ``cache_size``
        wholesale — mixing a config with explicit values for those
        arguments is not supported, so a serialized config replays the
        exact run it describes.
    deadline:
        Optional cooperative :class:`~repro.resilience.Deadline` from the
        caller (e.g. ``run_matrix``'s per-cell budget).  The serial loop
        checks it between relations — a running relation is never
        interrupted — and raises
        :class:`~repro.resilience.DeadlineExceededError` on overrun.
    cell_deadline:
        Per-*relation* wall-clock budget in seconds for the parallel
        path: the scheduler watchdog kills a worker whose relation cell
        overshoots it.  Ignored when ``procs == 1`` (use ``deadline``).

    Returns
    -------
    DiscoveryResult
        Discovered facts (``rank <= top_n``), their ranks, and a runtime
        breakdown into weight computation, generation and ranking.
    """
    if config is not None:
        strategy = config.strategy
        top_n = config.top_n
        max_candidates = config.max_candidates
        seed = config.seed
        drop_self_loops = config.drop_self_loops
        workers = config.workers
        cache_size = config.cache_size
    if top_n < 1:
        raise ValueError(f"top_n must be >= 1, got {top_n}")
    if max_candidates < 1:
        raise ValueError(f"max_candidates must be >= 1, got {max_candidates}")
    model_entities = getattr(model, "num_entities", None)
    if model_entities is not None and model_entities != graph.num_entities:
        raise ValueError(
            f"model was built for {model_entities} entities but the graph "
            f"has {graph.num_entities}; did you pass the wrong dataset?"
        )

    if procs < 1:
        raise ValueError(f"procs must be >= 1, got {procs}")
    train = graph.train
    if stats is None:
        stats = GraphStatistics(train)
    if engine is None and procs == 1:
        engine = RankingEngine(cache_size=cache_size, workers=workers)
    stats_before = getattr(engine, "stats", None) if procs == 1 else None
    stats_baseline = stats_before.as_dict() if stats_before is not None else {}

    if isinstance(strategy, str):
        strategy = create_strategy(strategy)

    registry = get_registry()
    spans_before = registry.snapshot()["spans"] if registry.enabled else None

    with span("discover"):
        # Line 7: compute_weights(strategy).  Done once — the distributions
        # do not change across relations — but charged to the runtime as in
        # the paper, where this step dominates for the triangle-based
        # strategies.
        with span("discover.weights") as weights_span:
            strategy.prepare(stats)
        weight_seconds = weights_span.wall_seconds

        if relations is None:
            relations = [int(r) for r in train.unique_relations()]

        # Line 4: mesh-grid side length.
        sample_size = int(np.sqrt(max_candidates)) + 10

        all_facts: list[np.ndarray] = []
        all_ranks: list[np.ndarray] = []
        per_relation: dict[int, int] = {}
        candidates_generated = 0
        generation_seconds = 0.0
        ranking_seconds = 0.0
        parallel_ranking_stats: dict[str, float] = {}

        if procs > 1:
            outcomes = _discover_parallel(
                model,
                graph,
                strategy,
                relations,
                seed=seed,
                top_n=top_n,
                max_candidates=max_candidates,
                sample_size=sample_size,
                drop_self_loops=drop_self_loops,
                rule_filter=rule_filter,
                procs=procs,
                workers=workers,
                cache_size=cache_size,
                cell_deadline=cell_deadline,
            )
        else:

            def serial_outcomes():
                # Cooperative deadline enforcement: a relation in
                # progress always finishes; the budget is checked at
                # each relation boundary.
                for relation in relations:
                    if deadline is not None:
                        deadline.check(f"discover_facts:relation/{relation}")
                    yield (
                        discover_relation(
                            model,
                            train,
                            strategy,
                            relation,
                            spawn_stream(seed, relation),
                            top_n=top_n,
                            max_candidates=max_candidates,
                            sample_size=sample_size,
                            drop_self_loops=drop_self_loops,
                            rule_filter=rule_filter,
                            engine=engine,
                        ),
                        None,
                    )

            outcomes = serial_outcomes()

        for outcome, worker_stats in outcomes:
            generation_seconds += outcome.generation_seconds
            ranking_seconds += outcome.ranking_seconds
            candidates_generated += outcome.candidates_generated
            registry.counter("discover.relations_count").inc()
            registry.counter("discover.candidates_count").inc(
                outcome.candidates_generated
            )
            per_relation[outcome.relation] = len(outcome.ranks)
            if worker_stats:
                for key, value in worker_stats.items():
                    parallel_ranking_stats[key] = (
                        parallel_ranking_stats.get(key, 0) + value
                    )
            if outcome.candidates_generated == 0:
                continue
            all_facts.append(outcome.facts)
            all_ranks.append(outcome.ranks)
            registry.counter("discover.facts_count").inc(len(outcome.ranks))

        facts = (
            np.concatenate(all_facts, axis=0)
            if all_facts
            else np.zeros((0, 3), dtype=np.int64)
        )
        ranks = np.concatenate(all_ranks) if all_ranks else np.zeros(0)

    trace: dict[str, dict[str, float]] = {}
    if spans_before is not None:
        trace = flatten_spans(
            span_tree_delta(spans_before, registry.snapshot()["spans"])
        )
    logger.info(
        "discovered %d facts with %s over %d relations "
        "(%.2fs: weights %.3fs, generation %.3fs, ranking %.3fs)",
        len(facts),
        strategy.name,
        len(relations),
        weight_seconds + generation_seconds + ranking_seconds,
        weight_seconds,
        generation_seconds,
        ranking_seconds,
    )
    ranking_stats: dict[str, float] = parallel_ranking_stats
    if stats_before is not None:
        after = stats_before.as_dict()
        ranking_stats = {
            key: after[key] - stats_baseline.get(key, 0) for key in after
        }
    return DiscoveryResult(
        facts=facts,
        ranks=ranks,
        strategy=strategy.name,
        top_n=top_n,
        max_candidates=max_candidates,
        candidates_generated=candidates_generated,
        generation_seconds=generation_seconds,
        ranking_seconds=ranking_seconds,
        weight_seconds=weight_seconds,
        per_relation=per_relation,
        ranking_stats=ranking_stats,
        trace=trace,
    )


def _discover_parallel(
    model: KGEModel,
    graph: KnowledgeGraph,
    strategy: SamplingStrategy,
    relations: list[int],
    seed: int,
    top_n: int,
    max_candidates: int,
    sample_size: int,
    drop_self_loops: bool,
    rule_filter,
    procs: int,
    workers: int,
    cache_size: int,
    cell_deadline: float | None = None,
) -> list[tuple["RelationDiscovery", dict]]:
    """Dispatch relations across the process fabric; merged in order.

    The model is republished to shared memory for the pool's lifetime;
    the prepared strategy and graph ship once per worker process through
    the scheduler context.  Worker span subtrees are folded back into
    the active registry (under ``discover/parallel.cell``) so the run's
    trace still covers the work done off-process.
    """
    from ..parallel import Cell, ParallelScheduler, SharedEmbeddingStore
    from ..parallel.workers import DiscoveryContext, discover_relation_worker

    registry = get_registry()
    with SharedEmbeddingStore.publish(model) as store:
        context = DiscoveryContext(
            handle=store.handle,
            graph=graph,
            strategy=strategy,
            seed=seed,
            top_n=top_n,
            max_candidates=max_candidates,
            sample_size=sample_size,
            drop_self_loops=drop_self_loops,
            rule_filter=rule_filter,
            workers=workers,
            cache_size=cache_size,
        )
        scheduler = ParallelScheduler(
            discover_relation_worker, procs, context=context, seed=seed,
            cell_deadline=cell_deadline,
        )
        outcomes = scheduler.run(
            [Cell(key=f"relation/{relation}", payload=int(relation))
             for relation in relations]
        )
    merged: list[tuple[RelationDiscovery, dict]] = []
    for outcome in outcomes:
        if registry.enabled:
            for path, node in outcome.trace.items():
                registry.record_span(
                    ("discover",) + tuple(path.split("/")),
                    node["wall_seconds"],
                    node["cpu_seconds"],
                    count=node["count"],
                )
        merged.append((outcome.value["outcome"], outcome.value["ranking_stats"]))
    return merged
