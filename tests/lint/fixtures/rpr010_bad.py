"""RPR010 bad fixture: hazards two calls below a pipeline entry point."""

import numpy as np


def train_model(config):
    rng = _make_rng()
    return _collect(config, rng)


def _make_rng():
    return np.random.default_rng()


def _collect(config, rng):
    pending = {1, 2, 3}
    return list(pending)
