"""Storage backends: roundtrips, checksums, streaming writers, pickling."""

import pickle

import numpy as np
import pytest

from repro.kg import (
    InMemoryBackend,
    KnowledgeGraph,
    MmapBackend,
    StorageCorruptError,
    TripleSet,
    kg_store_exists,
    load_dataset,
    load_kg_store,
    open_backend,
    save_kg_store,
)
from repro.kg.storage import content_digest


@pytest.fixture(params=["memory", "mmap"])
def backend(request, tmp_path):
    if request.param == "memory":
        return InMemoryBackend()
    return MmapBackend(tmp_path / "store")


class TestBackendContract:
    def test_put_get_roundtrip(self, backend):
        arr = np.arange(12, dtype=np.int64).reshape(4, 3)
        backend.put("cols", arr)
        got = backend.get("cols")
        np.testing.assert_array_equal(got, arr)
        assert "cols" in backend and "other" not in backend
        assert backend.names() == ["cols"]

    def test_views_are_read_only(self, backend):
        backend.put("x", np.arange(5))
        view = backend.get("x")
        with pytest.raises((ValueError, TypeError)):
            view[0] = 99

    def test_put_copies_input(self, backend):
        arr = np.arange(5, dtype=np.int64)
        backend.put("x", arr)
        arr[0] = 42
        assert backend.get("x")[0] == 0

    def test_missing_name_raises_keyerror(self, backend):
        with pytest.raises(KeyError):
            backend.get("nope")

    def test_streaming_writer_matches_put(self, backend):
        rows = np.arange(30, dtype=np.int64).reshape(10, 3)
        with backend.writer("streamed", np.int64, columns=3) as writer:
            writer.append(rows[:4])
            writer.append(rows[4:])
        backend.put("direct", rows)
        np.testing.assert_array_equal(
            backend.get("streamed"), backend.get("direct")
        )

    def test_streaming_writer_1d(self, backend):
        with backend.writer("keys", np.int64) as writer:
            writer.append(np.arange(7))
            writer.append(np.arange(7, 11))
        np.testing.assert_array_equal(backend.get("keys"), np.arange(11))

    def test_empty_writer(self, backend):
        with backend.writer("empty", np.int64, columns=3):
            pass
        assert backend.get("empty").shape == (0, 3)


class TestMmapBackend:
    def test_reopen_existing_store(self, tmp_path):
        store = tmp_path / "s"
        first = MmapBackend(store)
        first.put("a", np.arange(4))
        second = MmapBackend(store, mode="r")
        np.testing.assert_array_equal(second.get("a"), np.arange(4))

    def test_read_only_mode_rejects_writes(self, tmp_path):
        store = tmp_path / "s"
        MmapBackend(store).put("a", np.arange(4))
        ro = MmapBackend(store, mode="r")
        with pytest.raises(PermissionError):
            ro.put("b", np.arange(4))

    def test_missing_directory_in_read_mode(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MmapBackend(tmp_path / "absent", mode="r")

    def test_corrupted_data_detected(self, tmp_path):
        store = tmp_path / "s"
        backend = MmapBackend(store)
        backend.put("a", np.arange(64, dtype=np.int64))
        path = store / "a.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageCorruptError):
            MmapBackend(store, mode="r").get("a")

    def test_corruption_ignored_without_verify(self, tmp_path):
        store = tmp_path / "s"
        MmapBackend(store).put("a", np.arange(64, dtype=np.int64))
        path = store / "a.npy"
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        unchecked = MmapBackend(store, mode="r", verify=False)
        assert unchecked.get("a").shape == (64,)

    def test_spec_reopens_read_only(self, tmp_path):
        store = tmp_path / "s"
        backend = MmapBackend(store)
        backend.put("a", np.arange(4))
        again = open_backend(backend.spec())
        np.testing.assert_array_equal(again.get("a"), np.arange(4))
        assert again.mode == "r"

    def test_memory_backend_has_no_spec(self):
        with pytest.raises(TypeError):
            InMemoryBackend().spec()

    def test_content_digest_covers_dtype(self):
        ints = np.arange(4, dtype=np.int64)
        floats = ints.astype(np.float64)
        assert content_digest(ints) != content_digest(floats)


class TestTripleSetBackends:
    def test_persist_and_reopen(self, tmp_path):
        triples = TripleSet([(0, 0, 1), (1, 0, 2), (2, 1, 0)], 3, 2)
        backend = MmapBackend(tmp_path / "s")
        triples.persist(backend, prefix="train.")
        again = TripleSet.from_backend(backend, 3, 2, prefix="train.")
        assert again == triples
        np.testing.assert_array_equal(again.array, triples.array)

    def test_mmap_set_pickles_as_pointer(self, tmp_path):
        graph = load_dataset("wn18rr-like")
        store = save_kg_store(graph, tmp_path / "s")
        reopened = load_kg_store(store)
        blob = pickle.dumps(reopened.train)
        assert len(blob) < 4096  # a pointer, not the data
        clone = pickle.loads(blob)
        assert clone == reopened.train

    def test_in_memory_set_pickles_by_value(self):
        triples = TripleSet([(0, 0, 1)], 2, 1)
        clone = pickle.loads(pickle.dumps(triples))
        assert clone == triples


class TestKGStore:
    @pytest.fixture(scope="class")
    def saved(self, tmp_path_factory):
        graph = load_dataset("fb15k237-like")
        store = tmp_path_factory.mktemp("stores") / "fb"
        save_kg_store(graph, store)
        return graph, store

    def test_exists(self, saved, tmp_path):
        _, store = saved
        assert kg_store_exists(store)
        assert not kg_store_exists(tmp_path / "nowhere")

    @pytest.mark.parametrize("mmap", [True, False])
    def test_roundtrip(self, saved, mmap):
        graph, store = saved
        again = load_kg_store(store, mmap=mmap)
        assert isinstance(again, KnowledgeGraph)
        assert again.name == graph.name
        for split in ("train", "valid", "test"):
            ours, theirs = getattr(graph, split), getattr(again, split)
            assert ours == theirs
            np.testing.assert_array_equal(ours.array, theirs.array)
        assert again.entities == graph.entities
        assert again.relations == graph.relations
        np.testing.assert_array_equal(
            again.metadata["entity_types"], graph.metadata["entity_types"]
        )

    def test_tampered_labels_detected(self, saved, tmp_path):
        import shutil

        _, store = saved
        copy = tmp_path / "tampered"
        shutil.copytree(store, copy)
        labels = copy / "entities.txt"
        labels.write_text(
            labels.read_text(encoding="utf-8").replace("e_0\n", "e_X\n", 1),
            encoding="utf-8",
        )
        with pytest.raises(StorageCorruptError):
            load_kg_store(copy)
