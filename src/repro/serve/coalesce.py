"""Single-flight request coalescing.

Concurrent requests with an identical cache key (endpoint + canonical
JSON body) elect one *leader* that computes the response; every
*follower* blocks on the leader's completion event and receives the very
same result object.  Layered on the :class:`~repro.kge.ranking.RankingEngine`
query-dedup this means N clients hammering one ``(s, r)`` query cost one
score-row computation total: the engine dedups within a batch, the
single-flight dedups across concurrent batches.

Followers wait in bounded slices so a per-request
:class:`~repro.resilience.Deadline` still fires while the leader works;
a timed-out follower detaches with a typed error and the leader's result
simply serves the remaining waiters.  Leader failures propagate to all
waiters as the same exception instance.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

from ..obs import get_registry
from ..resilience import Deadline

__all__ = ["SingleFlight"]

# Bounded event-wait slice for followers (lint rule RPR018 forbids
# unbounded blocking waits anywhere in repro.serve).
_WAIT_SLICE_SECONDS = 0.05


class _Call:
    """Shared slot for one in-flight computation."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: BaseException | None = None


class SingleFlight:
    """Coalesce concurrent identical computations into one execution."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, _Call] = {}
        self._leads_count = 0
        self._coalesced_count = 0

    def counters(self) -> dict[str, int]:
        """Lifetime tallies: ``leads_count`` executions, ``coalesced_count`` joins."""
        with self._lock:
            return {
                "leads_count": self._leads_count,
                "coalesced_count": self._coalesced_count,
            }

    def run(
        self,
        key: Hashable,
        supplier: Callable[[], Any],
        deadline: Deadline | None = None,
    ) -> Any:
        """Return ``supplier()``, sharing one execution across equal keys.

        The result object is shared by reference between the leader and
        all followers, so suppliers must return immutable (or effectively
        read-only) values — the wire types qualify.
        """
        with self._lock:
            call = self._inflight.get(key)
            leader = call is None
            if leader:
                call = _Call()
                self._inflight[key] = call
                self._leads_count += 1
            else:
                self._coalesced_count += 1
        metrics = get_registry()
        if leader:
            metrics.counter("serve.flight_leads_count").inc()
            return self._lead(key, call, supplier)
        metrics.counter("serve.coalesced_count").inc()
        while not call.event.wait(timeout=_WAIT_SLICE_SECONDS):
            if deadline is not None:
                deadline.check("waiting for coalesced result")
        if call.error is not None:
            raise call.error
        return call.value

    def _lead(self, key: Hashable, call: _Call, supplier: Callable[[], Any]) -> Any:
        try:
            call.value = supplier()
        except BaseException as error:
            call.error = error
            raise
        finally:
            with self._lock:
                del self._inflight[key]
            call.event.set()
        return call.value
