"""Benchmark-session configuration.

Ensures the benchmark modules can import :mod:`common` regardless of how
pytest resolves rootdir, and prints where result tables are written.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def pytest_sessionfinish(session, exitstatus):  # noqa: ARG001 - pytest hook
    results = Path(__file__).parent / "results"
    if results.is_dir() and any(results.iterdir()):
        print(f"\nbenchmark tables written to {results}")
