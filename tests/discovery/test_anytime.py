"""Tests for budget-constrained anytime discovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discovery import anytime_discover
from repro.kg import GraphStatistics


@pytest.fixture(scope="module")
def shared_stats(tiny_graph):
    return GraphStatistics(tiny_graph.train)


class TestValidation:
    def test_bad_scheduler(self, trained_distmult, tiny_graph):
        with pytest.raises(ValueError):
            anytime_discover(
                trained_distmult, tiny_graph, budget_seconds=1.0,
                scheduler="priority",
            )

    def test_bad_budget(self, trained_distmult, tiny_graph):
        with pytest.raises(ValueError):
            anytime_discover(trained_distmult, tiny_graph, budget_seconds=0.0)

    def test_bad_batch(self, trained_distmult, tiny_graph):
        with pytest.raises(ValueError):
            anytime_discover(
                trained_distmult, tiny_graph, budget_seconds=1.0,
                batch_candidates=0,
            )


class TestInvariants:
    @pytest.fixture(scope="class")
    def result(self, trained_distmult, tiny_graph):
        return anytime_discover(
            trained_distmult, tiny_graph, budget_seconds=1.5,
            scheduler="ucb", top_n=15, batch_candidates=50, seed=0,
        )

    def test_budget_roughly_respected(self, result):
        # One pull may overshoot; anything beyond 3× the budget is a bug.
        assert result.elapsed_seconds < 3 * result.budget_seconds

    def test_facts_valid(self, result, tiny_graph):
        if result.num_facts:
            assert not tiny_graph.train.contains(result.facts).any()
            assert (result.ranks <= 15).all()
            assert (result.ranks >= 1).all()

    def test_no_duplicate_facts(self, result, tiny_graph):
        from repro.kg import encode_keys

        if result.num_facts:
            keys = encode_keys(
                result.facts, tiny_graph.num_entities, tiny_graph.num_relations
            )
            assert len(np.unique(keys)) == len(keys)

    def test_pull_accounting(self, result, tiny_graph):
        assert set(result.pulls) == set(
            int(r) for r in tiny_graph.train.unique_relations()
        )
        assert sum(result.pulls.values()) > 0

    def test_rewards_are_rates(self, result):
        for reward in result.rewards.values():
            assert 0.0 <= reward <= 1.0

    def test_metrics(self, result):
        assert 0.0 <= result.mrr() <= 1.0
        assert result.facts_per_hour() >= 0.0


class _RelationBiasedModel:
    """Scripted model making relation 0 a high-yield arm.

    For relation 0 the object scores follow object popularity — the same
    signal the sampling strategies use to pick candidates — so most
    sampled candidates rank near the top.  Every other relation scores
    pure noise, so acceptance is ≈ top_n / N.  Only the subset of the
    KGEModel interface that object-side ranking touches is implemented.
    """

    def __init__(self, num_entities: int, popularity: np.ndarray) -> None:
        self.num_entities = num_entities
        self.popularity = popularity.astype(float)
        self._rng = np.random.default_rng(0)

    def scores_sp(self, s, r):
        r = np.asarray(r)
        scores = self._rng.normal(0.0, 1.0, size=(len(r), self.num_entities))
        scores[r == 0] = self.popularity + self._rng.normal(
            0.0, 1e-6, size=(int((r == 0).sum()), self.num_entities)
        )
        return scores


# Function-scoped on purpose: the model consumes its internal RNG on
# every scores_sp call, and the wall-clock-budgeted tests draw a
# timing-dependent amount from it.  Sharing one instance across tests
# would leak that state into the deterministic scheduler comparison.
@pytest.fixture
def biased_model(small_graph):
    stats = GraphStatistics(small_graph.train, backend="sparse")
    return _RelationBiasedModel(small_graph.num_entities, stats.object_frequency)


class TestSchedulers:
    def test_round_robin_spreads_pulls(self, small_graph, biased_model):
        """On a graph large enough that no arm exhausts, round-robin pull
        counts differ by at most one."""
        model = biased_model
        result = anytime_discover(
            model, small_graph, budget_seconds=0.3,
            scheduler="round_robin", top_n=15, batch_candidates=100, seed=0,
        )
        assert not any(result.exhausted.values())
        pulls = list(result.pulls.values())
        assert max(pulls) - min(pulls) <= 1

    def test_ucb_finds_facts(self, trained_distmult, tiny_graph):
        result = anytime_discover(
            trained_distmult, tiny_graph, budget_seconds=1.0,
            scheduler="ucb", top_n=15, batch_candidates=50, seed=0,
        )
        assert result.num_facts > 0

    def test_ucb_prefers_high_yield_relations(self, small_graph, biased_model):
        """With one relation yielding mostly-accepted candidates and the
        rest near-chance, UCB must concentrate its pulls on it."""
        model = biased_model
        result = anytime_discover(
            model, small_graph, budget_seconds=0.4,
            scheduler="ucb", top_n=5, batch_candidates=64, seed=0,
        )
        busiest = max(result.pulls, key=result.pulls.get)
        assert busiest == 0
        assert result.rewards[0] == max(result.rewards.values())

    def test_ucb_beats_round_robin_on_skewed_yields(self, small_graph, biased_model):
        """The point of the bandit: same budget (pull count), more facts.

        The budget is expressed in pulls (``max_pulls``) rather than
        wall-clock so both schedulers do exactly the same amount of work
        and the comparison is deterministic.
        """
        model = biased_model
        kwargs = dict(
            budget_seconds=30.0, max_pulls=30, top_n=5,
            batch_candidates=64, seed=0,
        )
        ucb = anytime_discover(model, small_graph, scheduler="ucb", **kwargs)
        rr = anytime_discover(model, small_graph, scheduler="round_robin", **kwargs)
        ucb_rate = ucb.num_facts / max(sum(ucb.pulls.values()), 1)
        rr_rate = rr.num_facts / max(sum(rr.pulls.values()), 1)
        assert ucb_rate > rr_rate

    def test_anytime_monotone_in_budget(self, trained_distmult, tiny_graph):
        small = anytime_discover(
            trained_distmult, tiny_graph, budget_seconds=0.2,
            scheduler="ucb", top_n=15, batch_candidates=50, seed=0,
        )
        large = anytime_discover(
            trained_distmult, tiny_graph, budget_seconds=1.5,
            scheduler="ucb", top_n=15, batch_candidates=50, seed=0,
        )
        assert large.num_facts >= small.num_facts

    def test_exhausted_arms_terminate_early(self, trained_distmult, tiny_graph):
        """With top_n = N every candidate passes; once every relation's
        pool is exhausted the loop stops before the budget."""
        result = anytime_discover(
            trained_distmult, tiny_graph, budget_seconds=30.0,
            scheduler="round_robin", top_n=tiny_graph.num_entities,
            batch_candidates=2000, seed=0, max_pulls=200,
        )
        assert result.elapsed_seconds < 30.0
