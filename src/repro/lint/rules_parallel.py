"""RPR015 — process-pool safety for spawned workers.

The campaign fabric (:mod:`repro.parallel`) runs cells in spawn-based
worker processes: dispatched callables are pickled by reference, every
worker re-imports the defining module from scratch, and nothing of the
parent's module state comes along.  Three classes of mistake survive
review because they work fine in-process and only fail (or silently
diverge) under spawn:

- **unpicklable dispatch** — a lambda or a function defined inside
  another function cannot be pickled by reference, so handing one to
  ``ParallelScheduler`` or ``ProcessPoolExecutor.submit`` raises only at
  dispatch time;
- **unseeded workers** — a worker that neither receives an ``rng``/
  ``seed`` argument nor derives a stream via ``spawn_stream`` /
  ``spawn_seed`` falls back to process-global state, and spawn gives
  every worker a *different* re-import of that state, breaking the
  bit-identical parallel-equals-serial contract;
- **captured module globals** — a module-level ``open(...)`` handle or
  RNG (``default_rng`` / ``random.Random``) read inside a worker is
  re-created per process on re-import: file handles multiply and
  interleave, streams restart and diverge from the serial order.

The rule checks dispatch sites per module: the worker argument of
``ParallelScheduler(...)``, the first argument of ``.submit(...)`` on a
pool bound from ``ProcessPoolExecutor(...)`` in the same scope, and the
``initializer=`` of ``ProcessPoolExecutor(...)``.  Workers whose
definition lives in the same module additionally get the seeding and
capture checks (initializers are exempt from seeding — they run once
per process, before any cell).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, register_rule

__all__ = ["ProcessPoolSafetyRule"]

#: Callables that ship their first positional argument to spawned workers.
_SCHEDULER_NAMES = frozenset({"ParallelScheduler"})

#: Process-pool constructors whose ``initializer=`` runs in every worker.
_POOL_NAMES = frozenset({"ProcessPoolExecutor"})

#: Calls whose module-level result must not be read inside a worker.
_HAZARD_FACTORIES = {
    "open": "an open file handle",
    "default_rng": "an RNG stream",
    "Random": "an RNG stream",
    "Generator": "an RNG stream",
    "SystemRandom": "an RNG stream",
}

#: Parameter names that mark a worker as receiving its stream explicitly.
_SEED_PARAMS = frozenset({"rng", "seed"})

#: Calls that derive a per-task stream inside the worker body.
_SEED_DERIVERS = frozenset({"spawn_stream", "spawn_seed"})

_FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _call_tail(node: ast.Call) -> str | None:
    """Last component of the callee's (dotted) name, if it has one."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _param_names(func: ast.FunctionDef) -> set[str]:
    args = func.args
    names = {arg.arg for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _derives_stream(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and _call_tail(node) in _SEED_DERIVERS:
            return True
    return False


@register_rule
class ProcessPoolSafetyRule(Rule):
    rule_id = "RPR015"
    name = "process-pool-safety"
    description = (
        "functions dispatched to spawned worker processes must be "
        "module-level and picklable, re-seed via an rng/seed argument or "
        "spawn_stream/spawn_seed, and not read module-global RNG streams "
        "or open file handles"
    )
    rationale = (
        "Spawn pickles workers by reference and re-imports their module "
        "in every process: lambdas and closures fail to pickle at "
        "dispatch time, unseeded workers fall back to per-process global "
        "state that breaks the parallel-equals-serial bit-identity "
        "contract, and module-global file handles or RNG streams are "
        "silently re-created per worker instead of shared."
    )
    example = (
        "STREAM = np.random.default_rng(7)\n"
        "def cell_worker(context, payload):      # RPR015: no rng/seed\n"
        "    return STREAM.random()              # RPR015: global stream\n"
        "scheduler = ParallelScheduler(lambda c, p, r: p, procs=4)\n"
        "                               # RPR015: lambda is unpicklable\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        module_defs: dict[str, ast.FunctionDef] = {}
        hazard_globals: dict[str, str] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, _FunctionDef):
                module_defs[stmt.name] = stmt
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if not isinstance(value, ast.Call):
                    continue
                tail = _call_tail(value)
                if tail not in _HAZARD_FACTORIES:
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        hazard_globals[target.id] = _HAZARD_FACTORIES[tail]

        findings: list[Finding] = []
        checked_defs: set[tuple[str, str]] = set()

        def check_worker_def(func: ast.FunctionDef, role: str) -> None:
            if (func.name, role) in checked_defs:
                return
            checked_defs.add((func.name, role))
            if role == "worker" and not (
                _param_names(func) & _SEED_PARAMS
            ) and not _derives_stream(func):
                findings.append(
                    self.finding(
                        ctx,
                        func,
                        f"worker '{func.name}' runs in spawned processes but "
                        "neither takes an rng/seed parameter nor derives a "
                        "stream via spawn_stream/spawn_seed",
                    )
                )
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in hazard_globals
                ):
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"worker '{func.name}' reads module global "
                            f"'{node.id}' ({hazard_globals[node.id]}); spawn "
                            "re-imports the module, so every worker gets its "
                            "own diverging copy",
                        )
                    )

        def check_dispatch(
            arg: ast.expr, local_callables: set[str], role: str
        ) -> None:
            if isinstance(arg, ast.Lambda):
                findings.append(
                    self.finding(
                        ctx,
                        arg,
                        "lambda dispatched to a spawned process pool cannot "
                        "be pickled by reference; define a module-level "
                        "function",
                    )
                )
                return
            if not isinstance(arg, ast.Name):
                return
            if arg.id in local_callables:
                findings.append(
                    self.finding(
                        ctx,
                        arg,
                        f"'{arg.id}' is defined inside a function; spawned "
                        "workers are pickled by reference and must be "
                        "module-level",
                    )
                )
                return
            if arg.id in module_defs:
                check_worker_def(module_defs[arg.id], role)

        def scan_scope(root: ast.AST, local_callables: set[str]) -> None:
            """Check every dispatch site in ``root`` (one function or the
            module top level), after collecting which locals name process
            pools and which name unpicklable local callables."""
            pool_locals: set[str] = set()
            for node in ast.walk(root):
                if isinstance(node, ast.withitem):
                    expr = node.context_expr
                    if (
                        isinstance(expr, ast.Call)
                        and _call_tail(expr) in _POOL_NAMES
                        and isinstance(node.optional_vars, ast.Name)
                    ):
                        pool_locals.add(node.optional_vars.id)
                elif (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and _call_tail(node.value) in _POOL_NAMES
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            pool_locals.add(target.id)
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                tail = _call_tail(node)
                if tail in _SCHEDULER_NAMES and node.args:
                    check_dispatch(node.args[0], local_callables, "worker")
                elif tail in _POOL_NAMES:
                    for keyword in node.keywords:
                        if keyword.arg == "initializer":
                            check_dispatch(
                                keyword.value, local_callables, "initializer"
                            )
                elif (
                    tail == "submit"
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pool_locals
                    and node.args
                ):
                    check_dispatch(node.args[0], local_callables, "worker")

        def local_callables_of(func: ast.FunctionDef) -> set[str]:
            names: set[str] = set()
            for node in ast.walk(func):
                if node is func:
                    continue
                if isinstance(node, _FunctionDef):
                    names.add(node.name)
                elif isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Lambda
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            return names

        # Each top-level function (module- or class-body) is one scope;
        # dispatch sites in nested defs see the enclosing function's
        # local callables too, which is exactly the closure hazard.
        scoped_functions: list[ast.FunctionDef] = []
        for stmt in ctx.tree.body:
            if isinstance(stmt, _FunctionDef):
                scoped_functions.append(stmt)
            elif isinstance(stmt, ast.ClassDef):
                scoped_functions.extend(
                    item for item in stmt.body if isinstance(item, _FunctionDef)
                )
            else:
                scan_scope(stmt, set())
        for func in scoped_functions:
            scan_scope(func, local_callables_of(func))

        yield from findings
