"""Streaming generation: determinism, split validity, store integrity."""

import numpy as np
import pytest

from repro.kg import (
    DATASET_PROFILES,
    FULL_SCALE_PROFILES,
    generate_kg_streaming,
    kg_store_exists,
    load_full_dataset,
    load_kg_store,
    scale_profile,
)

PROFILE = DATASET_PROFILES["yago310-like"]


@pytest.fixture(scope="module")
def streamed(tmp_path_factory):
    store = tmp_path_factory.mktemp("streamed") / "yago"
    graph = generate_kg_streaming(PROFILE, store, chunk_size=2048)
    return graph, store


class TestStreamingGenerator:
    def test_reaches_target_size(self, streamed):
        graph, _ = streamed
        assert graph.num_entities == PROFILE.num_entities
        assert graph.num_relations == PROFILE.num_relations
        assert graph.num_triples <= PROFILE.num_triples
        assert graph.num_triples >= 0.97 * PROFILE.num_triples

    def test_deterministic_given_profile(self, streamed, tmp_path):
        graph, _ = streamed
        again = generate_kg_streaming(PROFILE, tmp_path / "again", chunk_size=2048)
        for split in ("train", "valid", "test"):
            assert getattr(again, split) == getattr(graph, split)
        np.testing.assert_array_equal(
            again.metadata["entity_types"], graph.metadata["entity_types"]
        )

    def test_no_unseen_ids_in_heldout(self, streamed):
        graph, _ = streamed
        seen_entities = np.zeros(graph.num_entities, dtype=bool)
        seen_entities[graph.train.subjects] = True
        seen_entities[graph.train.objects] = True
        seen_relations = np.zeros(graph.num_relations, dtype=bool)
        seen_relations[graph.train.relations] = True
        for split in (graph.valid, graph.test):
            assert seen_entities[split.subjects].all()
            assert seen_entities[split.objects].all()
            assert seen_relations[split.relations].all()

    def test_splits_are_disjoint(self, streamed):
        graph, _ = streamed
        assert not graph.train.contains(graph.valid.array).any()
        assert not graph.train.contains(graph.test.array).any()
        assert not graph.valid.contains(graph.test.array).any()

    def test_store_is_complete_and_loadable(self, streamed):
        graph, store = streamed
        assert kg_store_exists(store)
        assert not (store / ".gen-scratch").exists()  # scratch cleaned up
        again = load_kg_store(store)
        assert again.train == graph.train
        assert again.metadata["streaming"] is True

    def test_zipf_popularity_skew_survives(self, streamed):
        graph, _ = streamed
        counts = np.bincount(
            np.concatenate([graph.train.subjects, graph.train.objects]),
            minlength=graph.num_entities,
        )
        top_share = np.sort(counts)[-graph.num_entities // 20 :].sum() / counts.sum()
        assert top_share > 0.25  # top 5% of entities carry an outsized share


class TestScaleProfile:
    def test_scales_counts_only(self):
        scaled = scale_profile(PROFILE, 10)
        assert scaled.num_entities == PROFILE.num_entities * 10
        assert scaled.num_triples == PROFILE.num_triples * 10
        assert scaled.seed == PROFILE.seed
        assert scaled.triangle_closure_prob == PROFILE.triangle_closure_prob
        assert scaled.name == "yago310-like-x10"

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            scale_profile(PROFILE, 0)


class TestFullScaleRegistry:
    def test_profiles_match_paper_metadata(self):
        from repro.kg import PAPER_METADATA

        profile = FULL_SCALE_PROFILES["yago310-full"]
        meta = PAPER_METADATA["yago310"]
        assert profile.num_entities == meta.entities == 123_182
        assert profile.num_relations == meta.relations == 37
        assert profile.num_triples == meta.training + meta.validation + meta.test

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_full_dataset("fb15k237-full")

    def test_generates_then_reopens(self, tmp_path):
        # A scaled-down stand-in keeps this tier-1-fast; the true
        # full-scale path is exercised by bench_substrate_scaling.py.
        small = scale_profile(
            FULL_SCALE_PROFILES["yago310-full"], 0.01, name="yago310-mini"
        )
        store = tmp_path / "mini"
        first = generate_kg_streaming(small, store)
        again = load_kg_store(store)
        assert again.train == first.train
