"""Retry-executor tests: budgets, backoff, deadlines — no real waiting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import (
    FaultPlan,
    RetryBudgetExceededError,
    RetryPolicy,
    faults,
    with_retries,
)


def flaky(fail_times: int, error=RuntimeError):
    """A callable that fails its first ``fail_times`` attempts."""
    calls: list[int] = []

    def fn(attempt: int):
        calls.append(attempt)
        if len(calls) <= fail_times:
            raise error(f"attempt {attempt} failed")
        return ("ok", attempt)

    fn.calls = calls
    return fn


class TestPolicyValidation:
    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_delay_schedule(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=4.0)
        assert [policy.delay_for(a) for a in range(4)] == [1.0, 2.0, 4.0, 4.0]

    def test_jitter_is_deterministic_given_the_rng(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.5)
        a = policy.delay_for(0, np.random.default_rng(42))
        b = policy.delay_for(0, np.random.default_rng(42))
        assert a == b
        assert 0.5 <= a <= 1.5


class TestWithRetries:
    def test_first_attempt_success(self):
        fn = flaky(0)
        assert with_retries(fn, RetryPolicy(max_attempts=3)) == ("ok", 0)
        assert fn.calls == [0]

    def test_attempt_indices_are_passed_through(self):
        fn = flaky(2)
        result = with_retries(fn, RetryPolicy(max_attempts=3))
        assert result == ("ok", 2)
        assert fn.calls == [0, 1, 2]

    def test_budget_exhaustion_raises_typed_error_with_cause(self):
        fn = flaky(99)
        with pytest.raises(RetryBudgetExceededError) as info:
            with_retries(fn, RetryPolicy(max_attempts=3), label="job")
        assert info.value.attempts == 3
        assert isinstance(info.value.__cause__, RuntimeError)
        assert "attempt 2 failed" in str(info.value.__cause__)

    def test_non_retryable_errors_propagate_immediately(self):
        fn = flaky(99, error=TypeError)
        with pytest.raises(TypeError):
            with_retries(
                fn, RetryPolicy(max_attempts=5), retry_on=(ValueError,)
            )
        assert fn.calls == [0]

    def test_backoff_sleeps_follow_the_schedule(self):
        sleeps: list[float] = []
        fn = flaky(3)
        policy = RetryPolicy(max_attempts=4, base_delay=1.0, multiplier=2.0)
        with_retries(fn, policy, sleep=sleeps.append)
        assert sleeps == [1.0, 2.0, 4.0]

    def test_no_sleep_after_the_final_attempt(self):
        sleeps: list[float] = []
        with pytest.raises(RetryBudgetExceededError):
            with_retries(
                flaky(99),
                RetryPolicy(max_attempts=2, base_delay=1.0),
                sleep=sleeps.append,
            )
        assert sleeps == [1.0]


class TestDeadlines:
    def test_attempt_deadline_stops_retrying_overdue_failures(self):
        # The fault plan stalls attempt 0 by 900 virtual seconds; a failed
        # attempt that overshot its deadline must not be retried.
        fn = flaky(99)
        policy = RetryPolicy(max_attempts=5, attempt_deadline=60.0)
        with faults.inject(FaultPlan().stall("slow_job", 900.0)):
            with pytest.raises(RetryBudgetExceededError, match="overshot") as info:
                with_retries(fn, policy, label="slow_job")
        assert fn.calls == [0]
        assert info.value.attempts == 1

    def test_total_deadline_accounts_for_backoff(self):
        ticks = iter(range(100))
        policy = RetryPolicy(
            max_attempts=10, base_delay=50.0, total_deadline=40.0
        )
        with pytest.raises(RetryBudgetExceededError, match="total deadline"):
            with_retries(
                flaky(99),
                policy,
                sleep=lambda _: None,
                clock=lambda: float(next(ticks)),
            )

    def test_deadlines_do_not_fire_on_fast_attempts(self):
        fn = flaky(2)
        policy = RetryPolicy(
            max_attempts=4, attempt_deadline=60.0, total_deadline=600.0
        )
        assert with_retries(fn, policy) == ("ok", 2)
