"""Fault tolerance for training and campaign execution.

The paper's experimental matrix (sampling strategies × KGE models ×
datasets) is a long, failure-prone campaign: one diverged loss or one
truncated checkpoint silently poisons every downstream fact-discovery
number.  This package makes the stack survive those faults instead of
restarting from zero:

* :mod:`~repro.resilience.guards` — per-epoch NaN/Inf/divergence
  detection with halt / rollback / retry policies;
* :mod:`~repro.resilience.atomic` — write-temp-fsync-rename file
  publication plus content checksums, so corruption is detected at read
  time rather than producing garbage embeddings;
* :mod:`~repro.resilience.retry` — the shared backoff/deadline retry
  executor (jitter from an injected RNG, fully deterministic in tests);
* :mod:`~repro.resilience.journal` — crash-safe JSONL run journals that
  make :func:`repro.experiments.run_matrix` resumable;
* :mod:`~repro.resilience.rng` — seed-sequence spawning so retried work
  is deterministic without replaying the identical failing draw;
* :mod:`~repro.resilience.deadline` — the unified wall-clock
  :class:`Deadline` threaded from CLI flags down to retry loops and the
  scheduler watchdog;
* :mod:`~repro.resilience.faults` — compatibility shim for the
  fault-injection harness, promoted to first-class :mod:`repro.faults`.

Layering: this package sits below :mod:`repro.kge` and
:mod:`repro.experiments` (and above only :mod:`repro.faults`) and must
never import from them.
"""

from .atomic import atomic_savez, atomic_write, atomic_write_bytes, digest_arrays
from .deadline import Deadline
from .errors import (
    CheckpointCorruptError,
    DeadlineExceededError,
    FaultInjectedError,
    ResilienceError,
    RetryBudgetExceededError,
    SegmentLostError,
    TrainingDivergedError,
)
from .faults import FaultPlan, inject
from .guards import GuardConfig, GuardEvent, GuardReport, TrainingGuard
from .journal import JournalView, RunJournal, error_fingerprint
from .retry import RetryPolicy, with_retries
from .rng import spawn_seed, spawn_stream

__all__ = [
    "ResilienceError",
    "CheckpointCorruptError",
    "TrainingDivergedError",
    "RetryBudgetExceededError",
    "DeadlineExceededError",
    "SegmentLostError",
    "FaultInjectedError",
    "Deadline",
    "atomic_write",
    "atomic_write_bytes",
    "atomic_savez",
    "digest_arrays",
    "RetryPolicy",
    "with_retries",
    "spawn_stream",
    "spawn_seed",
    "GuardConfig",
    "GuardEvent",
    "GuardReport",
    "TrainingGuard",
    "RunJournal",
    "JournalView",
    "error_fingerprint",
    "FaultPlan",
    "inject",
]
