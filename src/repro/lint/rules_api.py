"""RPR005 — ``__all__`` must match the module's public surface.

Modules that declare ``__all__`` promise an explicit API.  Two drifts
break that promise silently: exporting a name that no longer exists
(``from module import *`` raises at a distance), and adding a public
function or class without exporting it (star-imports and API docs miss
it).  Modules without ``__all__`` are skipped — the convention in this
codebase is that every library module declares one, which the self-clean
test enforces by keeping the tree warning-free.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, register_rule

__all__ = ["AllConsistencyRule"]


def _literal_names(node: ast.expr) -> list[str] | None:
    """String elements of a literal list/tuple ``__all__``, else None."""
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    names = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return names


def _collect_toplevel(
    body: list[ast.stmt],
    defined: set[str],
    public_defs: list[ast.stmt],
) -> None:
    """Names bound at module level, recursing into top-level if/try only."""
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.add(node.name)
            if not node.name.startswith("_"):
                public_defs.append(node)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            defined.add(node.target.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                defined.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.If):
            _collect_toplevel(node.body, defined, public_defs)
            _collect_toplevel(node.orelse, defined, public_defs)
        elif isinstance(node, ast.Try):
            for block in (node.body, node.orelse, node.finalbody):
                _collect_toplevel(block, defined, public_defs)
            for handler in node.handlers:
                _collect_toplevel(handler.body, defined, public_defs)


@register_rule
class AllConsistencyRule(Rule):
    rule_id = "RPR005"
    name = "all-consistency"
    description = (
        "__all__ must list every public top-level def/class and only "
        "names the module actually defines"
    )
    rationale = (
        "__all__ is the module's published contract: star imports, "
        "documentation builds, and the package re-export checks "
        "(RPR013) all read it.  A phantom entry breaks consumers at "
        "import time; an unlisted public def quietly forks the API "
        "into 'documented' and 'accidental' halves.  `repro lint --fix` "
        "repairs both directions mechanically."
    )
    example = (
        "__all__ = [\"gone\"]        # RPR005: 'gone' is not defined\n"
        "\n"
        "def present():             # RPR005: public but unlisted\n"
        "    ...\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        all_node: ast.Assign | None = None
        exported: list[str] | None = None
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "__all__"
                for target in node.targets
            ):
                all_node = node
                exported = _literal_names(node.value)
                break
        if all_node is None:
            return
        if exported is None:
            yield self.finding(
                ctx, all_node, "__all__ is not a literal list/tuple of strings"
            )
            return

        defined: set[str] = set()
        public_defs: list[ast.stmt] = []
        _collect_toplevel(ctx.tree.body, defined, public_defs)

        for name in exported:
            if name not in defined:
                yield self.finding(
                    ctx,
                    all_node,
                    f"__all__ exports {name!r} but the module does not "
                    "define or import it",
                )
        for node in public_defs:
            if node.name not in exported:  # type: ignore[attr-defined]
                yield self.finding(
                    ctx,
                    node,
                    f"public {type(node).__name__.replace('Def', '').lower()} "
                    f"{node.name!r} is missing from __all__ "
                    "(export it or make it private)",  # type: ignore[attr-defined]
                )
