"""Fault-recovery benchmarks — supervision overhead and time-to-recovery.

Two questions about the chaos-hardened fabric:

* **What does supervision cost when nothing goes wrong?**  The watchdog
  adds two heartbeat bumps per cell (worker side) and a deadline check
  per dispatch-loop wakeup (parent side).  Both are microbenchmarked and
  expressed as a fraction of a representative cell's runtime — that
  per-cell fraction is the asserted <1% budget.  An end-to-end paired
  run (same cells, watchdog off/on) is also recorded, but not gated:
  its total is dominated by the ~1-2s pool spawn, so a run-to-run noise
  wiggle would drown the signal the budget is about.
* **How long does recovery take?**  A worker SIGKILLed mid-cell and a
  worker stalled past its deadline each force the scheduler to kill and
  rebuild the pool, charge the attempt, and re-dispatch.  Time to
  recovery is the wall-clock penalty of one such event over the
  fault-free run of the same cells (respawn dominates; the stall case
  additionally pays the deadline itself).

Results: ``benchmarks/results/BENCH_faults.json`` plus the rendered
table in ``benchmarks/results/fault_recovery.txt``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
from common import RESULTS_DIR, save_and_print

from repro.experiments import format_table
from repro.parallel import Cell, ParallelScheduler
from repro.parallel.watchdog import HeartbeatBoard
from repro.resilience import Deadline

#: Per-cell supervision cost budget on fault-free runs.
OVERHEAD_BUDGET = 0.01

#: Representative per-cell workload (numbers crunched per dispatch).
CELL_WORK = 200_000

#: Cells per end-to-end scheduler run.
NUM_CELLS = 8


def busy_worker(context, payload, rng):
    """A cell doing real numeric work for a few tens of milliseconds."""
    values = np.arange(CELL_WORK, dtype=np.float64) * (payload + 1)
    return float(np.sqrt(values).sum())


def kill_once_worker(context, payload, rng):
    """SIGKILL the worker the first time cell 0 runs; succeed on retry."""
    sentinel = context["sentinel"]
    if payload == 0 and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os.kill(os.getpid(), 9)
    return busy_worker(context, payload, rng)


def stall_once_worker(context, payload, rng):
    """Hang cell 0 past its deadline the first time; succeed on retry."""
    sentinel = context["sentinel"]
    if payload == 0 and not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        time.sleep(60.0)
    return busy_worker(context, payload, rng)


def _cells():
    return [Cell(key=f"cell-{i}", payload=i) for i in range(NUM_CELLS)]


def _timed_run(worker, context=None, **scheduler_kwargs):
    scheduler = ParallelScheduler(
        worker, 2, context=context, on_error="degrade", **scheduler_kwargs
    )
    t0 = time.perf_counter()
    outcomes = scheduler.run(_cells())
    elapsed = time.perf_counter() - t0
    assert all(outcome.status == "ok" for outcome in outcomes)
    return elapsed


def _best_of(fn, repeats=3):
    return min(fn() for _ in range(repeats))


def _per_call_seconds(fn, calls=20_000):
    t0 = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - t0) / calls


def test_fault_recovery(tmp_path):
    # -- supervision microcosts ------------------------------------------
    with HeartbeatBoard.create() as board:
        beat_s = _per_call_seconds(board.beat)
    deadline = Deadline.after(3600.0)
    check_s = _per_call_seconds(lambda: deadline.check("bench"))

    t0 = time.perf_counter()
    busy_worker(None, 0, None)
    cell_s = time.perf_counter() - t0
    for _ in range(4):  # best of 5
        t0 = time.perf_counter()
        busy_worker(None, 0, None)
        cell_s = min(cell_s, time.perf_counter() - t0)

    # Two beats per cell (start/end) plus a handful of parent-side
    # deadline evaluations per dispatch-loop wakeup.
    per_cell_supervision_s = 2 * beat_s + 4 * check_s
    overhead_fraction = per_cell_supervision_s / cell_s
    assert overhead_fraction < OVERHEAD_BUDGET

    # -- end-to-end paired run (recorded, not gated: spawn noise) --------
    plain_s = _best_of(lambda: _timed_run(busy_worker))
    supervised_s = _best_of(
        lambda: _timed_run(
            busy_worker, cell_deadline=60.0, heartbeat_timeout=30.0
        )
    )
    end_to_end_delta = supervised_s / plain_s - 1.0

    # -- time to recovery ------------------------------------------------
    killed_s = _timed_run(
        kill_once_worker,
        context={"sentinel": str(tmp_path / "killed")},
        max_attempts=3,
    )
    time_to_recovery_killed = max(killed_s - plain_s, 0.0)

    # The deadline clock starts at dispatch and so includes the ~1-2s
    # pool (re)spawn; a budget below that floor times out every retry.
    stalled_s = _timed_run(
        stall_once_worker,
        context={"sentinel": str(tmp_path / "stalled")},
        max_attempts=3,
        cell_deadline=5.0,
    )
    time_to_recovery_stalled = max(stalled_s - plain_s, 0.0)

    # Recovery must be bounded by kill-detect + respawn (+ deadline for
    # the stall), nowhere near a retry-from-scratch of the campaign.
    assert time_to_recovery_killed < 30.0
    assert time_to_recovery_stalled < 30.0

    rows = [
        {
            "scenario": "fault-free, watchdog off",
            "runtime_s": round(plain_s, 3),
            "recovery_s": "-",
        },
        {
            "scenario": "fault-free, watchdog on",
            "runtime_s": round(supervised_s, 3),
            "recovery_s": "-",
        },
        {
            "scenario": "one worker SIGKILLed",
            "runtime_s": round(killed_s, 3),
            "recovery_s": round(time_to_recovery_killed, 3),
        },
        {
            "scenario": "one worker stalled past deadline",
            "runtime_s": round(stalled_s, 3),
            "recovery_s": round(time_to_recovery_stalled, 3),
        },
    ]

    payload = {
        "beat_seconds": beat_s,
        "deadline_check_seconds": check_s,
        "representative_cell_seconds": cell_s,
        "per_cell_supervision_seconds": per_cell_supervision_s,
        "overhead_fraction": overhead_fraction,
        "overhead_budget": OVERHEAD_BUDGET,
        "end_to_end_plain_seconds": plain_s,
        "end_to_end_supervised_seconds": supervised_s,
        "end_to_end_delta_fraction": end_to_end_delta,
        "time_to_recovery_killed_seconds": time_to_recovery_killed,
        "time_to_recovery_stalled_seconds": time_to_recovery_stalled,
        "cells": NUM_CELLS,
        "procs": 2,
        "host_cpus": os.cpu_count() or 1,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_faults.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    save_and_print(
        "fault_recovery",
        format_table(
            rows,
            title="Watchdog overhead and time-to-recovery "
            f"(8 cells, procs=2, supervision {overhead_fraction:.4%}/cell)",
        ),
    )
