"""Equivalence and instrumentation suite for :mod:`repro.kge.ranking`.

The engine must produce **bit-identical** rank vectors to the legacy
chunked path (:func:`compute_ranks_reference`) across models, sides and
filter settings, while scoring at most one 1-vs-all row per unique
query.  ConvE is evaluated in ``eval()`` mode so batch norm uses running
statistics and dropout is disabled — in training mode its scores depend
on batch composition, which no dedup scheme can preserve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.kg import KGProfile, generate_kg
from repro.kge import (
    GroupedFilter,
    RankingEngine,
    ScoreRowCache,
    compute_ranks,
    create_model,
)
from repro.kge.base import KGEModel
from repro.kge.evaluation import compute_ranks_reference

#: The paper's model families the equivalence suite runs over.
MODELS = ("transe", "distmult", "complex", "rescal", "conve")


@pytest.fixture(scope="module")
def kg():
    """A small synthetic KG with skewed popularity (realistic meshes)."""
    return generate_kg(
        KGProfile(
            name="rank-eq",
            num_entities=30,
            num_relations=4,
            num_triples=200,
            num_types=3,
            popularity_exponent=0.8,
            triangle_closure_prob=0.2,
            seed=5,
        )
    )


@pytest.fixture(scope="module")
def candidates(kg):
    """Mesh-grid candidates (heavy query duplication) plus random extras."""
    rng = np.random.default_rng(0)
    subjects = rng.integers(0, kg.num_entities, 12)
    objects = rng.integers(0, kg.num_entities, 12)
    s_grid, o_grid = np.meshgrid(subjects, objects, indexing="ij")
    mesh = np.stack(
        [s_grid.ravel(), np.full(s_grid.size, 2, dtype=np.int64), o_grid.ravel()],
        axis=1,
    )
    extra = np.stack(
        [
            rng.integers(0, kg.num_entities, 60),
            rng.integers(0, kg.num_relations, 60),
            rng.integers(0, kg.num_entities, 60),
        ],
        axis=1,
    )
    return np.concatenate([mesh, extra])


def make_model(name: str, kg) -> KGEModel:
    model = create_model(name, kg.num_entities, kg.num_relations, dim=16, seed=3)
    model.eval()
    return model


class ScriptedModel(KGEModel):
    """Explicit score table — used to manufacture exact ties."""

    def __init__(self, num_entities: int, num_relations: int, table: np.ndarray):
        super().__init__(num_entities, num_relations, dim=2, seed=0)
        self.table = table

    def score_spo(self, s, r, o):
        return Tensor(self.table[s, r, o])

    def score_sp(self, s, r):
        return Tensor(self.table[s, r, :])

    def score_po(self, r, o):
        return Tensor(self.table[:, r, o].T)


class TestEquivalence:
    @pytest.mark.parametrize("name", MODELS)
    @pytest.mark.parametrize("side", ["object", "subject"])
    @pytest.mark.parametrize("filtered", [False, True])
    def test_engine_matches_reference(self, kg, candidates, name, side, filtered):
        model = make_model(name, kg)
        filter_triples = kg.train if filtered else None
        engine = RankingEngine()
        got = engine.compute_ranks(
            model, candidates, filter_triples=filter_triples, side=side
        )
        want = compute_ranks_reference(
            model, candidates, filter_triples=filter_triples, side=side
        )
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("filtered", [False, True])
    def test_ties_match_reference(self, kg, filtered):
        """Integer score tables force heavy ties; tie-averaging must agree."""
        rng = np.random.default_rng(1)
        table = rng.integers(0, 4, size=(30, 4, 30)).astype(np.float64)
        model = ScriptedModel(30, 4, table)
        cands = np.stack(
            [
                rng.integers(0, 30, 300),
                rng.integers(0, 4, 300),
                rng.integers(0, 30, 300),
            ],
            axis=1,
        )
        filter_triples = kg.train if filtered else None
        for side in ("object", "subject"):
            got = RankingEngine().compute_ranks(
                model, cands, filter_triples=filter_triples, side=side
            )
            want = compute_ranks_reference(
                model, cands, filter_triples=filter_triples, side=side
            )
            np.testing.assert_array_equal(got, want)

    def test_compute_ranks_delegates_to_engine(self, kg, candidates):
        """The public compute_ranks entry point is the engine path."""
        model = make_model("distmult", kg)
        via_default = compute_ranks(
            model, candidates, filter_triples=kg.train, side="object"
        )
        via_reference = compute_ranks_reference(
            model, candidates, filter_triples=kg.train, side="object"
        )
        np.testing.assert_array_equal(via_default, via_reference)

    def test_small_chunks_match_single_batch(self, kg, candidates):
        model = make_model("transe", kg)
        big = RankingEngine(chunk_size=4096).compute_ranks(
            model, candidates, filter_triples=kg.train
        )
        small = RankingEngine(chunk_size=3).compute_ranks(
            model, candidates, filter_triples=kg.train
        )
        np.testing.assert_array_equal(big, small)

    def test_empty_input(self, kg):
        model = make_model("distmult", kg)
        assert RankingEngine().compute_ranks(model, np.zeros((0, 3))).shape == (0,)

    def test_invalid_side(self, kg):
        model = make_model("distmult", kg)
        with pytest.raises(ValueError):
            RankingEngine().compute_ranks(
                model, np.asarray([[0, 0, 1]]), side="diagonal"
            )


class TestDeterminismAndWorkers:
    def test_workers_match_single_thread(self, kg, candidates):
        model = make_model("distmult", kg)
        single = RankingEngine(workers=1, chunk_size=16).compute_ranks(
            model, candidates, filter_triples=kg.train
        )
        threaded = RankingEngine(workers=4, chunk_size=16).compute_ranks(
            model, candidates, filter_triples=kg.train
        )
        np.testing.assert_array_equal(single, threaded)

    def test_workers_with_cache_match(self, kg, candidates):
        model = make_model("complex", kg)
        engine = RankingEngine(workers=4, chunk_size=8, cache_size=32)
        first = engine.compute_ranks(model, candidates, filter_triples=kg.train)
        second = engine.compute_ranks(model, candidates, filter_triples=kg.train)
        np.testing.assert_array_equal(first, second)


class TestInstrumentation:
    def test_mesh_dedup_scores_fewer_rows_than_candidates(self, kg):
        """Tier-1 smoke: on a mesh workload the engine computes one row
        per unique query — at least 5× fewer rows than candidates."""
        model = make_model("distmult", kg)
        subjects = np.arange(10)
        objects = np.arange(10, 20)
        s_grid, o_grid = np.meshgrid(subjects, objects, indexing="ij")
        mesh = np.stack(
            [s_grid.ravel(), np.zeros(s_grid.size, dtype=np.int64), o_grid.ravel()],
            axis=1,
        )
        engine = RankingEngine()
        engine.compute_ranks(model, mesh, filter_triples=kg.train)
        assert engine.stats.rows_scored == engine.stats.unique_queries == 10
        assert engine.stats.rows_scored < len(mesh)
        assert engine.stats.rows_scored * 5 <= len(mesh)
        assert engine.stats.rows_reused == len(mesh) - engine.stats.rows_scored
        assert engine.stats.candidates_ranked == len(mesh)

    def test_cache_reuses_rows_across_calls(self, kg, candidates):
        model = make_model("distmult", kg)
        engine = RankingEngine(cache_size=256)
        engine.compute_ranks(model, candidates, filter_triples=kg.train)
        scored_first = engine.stats.rows_scored
        assert scored_first > 0
        engine.compute_ranks(model, candidates, filter_triples=kg.train)
        assert engine.stats.rows_scored == scored_first  # all served by cache
        assert engine.stats.cache_hits == scored_first

    def test_reset_stats(self, kg, candidates):
        model = make_model("distmult", kg)
        engine = RankingEngine()
        engine.compute_ranks(model, candidates)
        assert engine.stats.candidates_ranked > 0
        engine.reset_stats()
        assert engine.stats.candidates_ranked == 0

    def test_stats_as_dict_keys(self):
        stats = RankingEngine().stats
        assert set(stats.as_dict()) == {
            "candidates_ranked",
            "unique_queries",
            "rows_scored",
            "rows_reused",
            "cache_hits",
            "score_seconds",
            "filter_seconds",
        }


class TestScoreRowCache:
    def test_lru_eviction(self):
        cache = ScoreRowCache(maxsize=2)
        row = np.zeros(3)
        cache.put(("a",), (row, row))
        cache.put(("b",), (row, row))
        cache.get(("a",))  # refresh "a" so "b" is evicted next
        cache.put(("c",), (row, row))
        assert cache.get(("a",)) is not None
        assert cache.get(("b",)) is None
        assert cache.get(("c",)) is not None
        assert len(cache) == 2

    def test_invalid_maxsize(self):
        with pytest.raises(ValueError):
            ScoreRowCache(maxsize=0)

    def test_clear(self):
        cache = ScoreRowCache(maxsize=4)
        cache.put(("a",), (np.zeros(2), np.zeros(2)))
        cache.clear()
        assert len(cache) == 0


class TestGroupedFilter:
    @pytest.mark.parametrize("side", ["object", "subject"])
    def test_matches_dict_index(self, kg, side):
        grouped = GroupedFilter(kg.train, side)
        index = kg.train.sp_index() if side == "object" else kg.train.po_index()
        pairs = np.asarray(sorted(index), dtype=np.int64)
        starts, stops = grouped.segments(
            grouped.query_keys(pairs[:, 0], pairs[:, 1])
        )
        for (pair, start, stop) in zip(map(tuple, pairs), starts, stops):
            np.testing.assert_array_equal(
                grouped.entities[start:stop], np.sort(index[pair])
            )

    def test_unknown_query_has_empty_segment(self, kg):
        grouped = GroupedFilter(kg.train, "object")
        # A query key beyond every real key: empty slice, no KeyError.
        starts, stops = grouped.segments(np.asarray([np.iinfo(np.int64).max]))
        assert starts[0] == stops[0]

    def test_invalid_side(self, kg):
        with pytest.raises(ValueError):
            GroupedFilter(kg.train, "diagonal")


class TestEngineValidation:
    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            RankingEngine(workers=0)

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            RankingEngine(chunk_size=0)


class TestScorePoFallback:
    def test_tiled_fallback_matches_per_row_loop(self, kg):
        """ConvE has no score_po override — the generic tiled fallback
        must equal scoring each (entity, r, o) row individually."""
        model = make_model("conve", kg)
        rng = np.random.default_rng(2)
        r = rng.integers(0, kg.num_relations, 5)
        o = rng.integers(0, kg.num_entities, 5)
        fallback = model.scores_po(r, o)
        assert fallback.shape == (5, kg.num_entities)
        entities = np.arange(kg.num_entities, dtype=np.int64)
        for i in range(5):
            per_row = model.scores_spo(
                np.stack(
                    [entities, np.full_like(entities, r[i]), np.full_like(entities, o[i])],
                    axis=1,
                )
            )
            # The tiled batch flows through BLAS with different blocking
            # than N single-query rows; accumulation order differs at the
            # last few ulps, so exact equality is not required here.
            np.testing.assert_allclose(fallback[i], per_row, rtol=1e-10)
