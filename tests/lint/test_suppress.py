"""Inline ``# lint: disable=...`` suppression semantics."""

from __future__ import annotations

from pathlib import Path

from repro.lint import Finding, LintEngine, filter_suppressed, suppressed_rule_ids

FIXTURES = Path(__file__).parent / "fixtures"


def _finding(line: int, rule_id: str = "RPR001") -> Finding:
    return Finding(rule_id=rule_id, path="f.py", line=line, col=1, message="m")


def test_marker_parsing():
    source = "x = 1  # lint: disable=RPR001, RPR002\n# lint: disable=all\ny = 2\n"
    assert suppressed_rule_ids(source) == {
        1: frozenset({"RPR001", "RPR002"}),
        2: frozenset({"all"}),
    }


def test_inline_and_preceding_comment_markers_suppress():
    source = (
        "a = 1  # lint: disable=RPR001\n"
        "# lint: disable=RPR001\n"
        "b = 1\n"
        "c = 1\n"
    )
    kept = filter_suppressed([_finding(1), _finding(3), _finding(4)], source)
    assert [finding.line for finding in kept] == [4]


def test_marker_on_preceding_code_line_does_not_leak():
    source = "a = 1  # lint: disable=RPR001\nb = 2\n"
    kept = filter_suppressed([_finding(2)], source)
    assert [finding.line for finding in kept] == [2]


def test_wrong_rule_id_does_not_suppress():
    source = "a = 1  # lint: disable=RPR002\n"
    assert filter_suppressed([_finding(1)], source) == [_finding(1)]


def test_all_wildcard_suppresses_every_rule():
    source = "a = 1  # lint: disable=all\n"
    assert filter_suppressed([_finding(1, "RPR006")], source) == []


def test_suppressed_fixture_end_to_end():
    findings = LintEngine().lint_file(FIXTURES / "suppressed.py")
    assert len(findings) == 1
    assert findings[0].rule_id == "RPR001"
    # Only the final, unexcused line survives.
    assert findings[0].line == 9
