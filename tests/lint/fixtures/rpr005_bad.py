"""RPR005 bad fixture: __all__ drifts in both directions."""

__all__ = ["exported_missing", "helper"]


def helper():
    return 1


def public_but_unlisted():
    return 2
