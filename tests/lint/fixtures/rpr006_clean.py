"""RPR006 clean fixture: float64 discipline and tidy defaults."""

import numpy as np


def collect(values=None):
    if values is None:
        values = []
    try:
        return np.asarray(values, dtype=np.float64)
    except ValueError:
        return None
