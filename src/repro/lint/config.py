"""Configuration: defaults, CLI overrides, and ``[tool.repro-lint]``.

The analyzer reads its project configuration from the ``pyproject.toml``
nearest to the first scanned path (walking up the directory tree), under
the ``[tool.repro-lint]`` table::

    [tool.repro-lint]
    paths = ["src/repro"]      # default scan roots for bare invocations
    enable = []                # empty → every registered rule
    disable = ["RPR006"]       # rule ids switched off project-wide
    exclude = ["*/migrations/*"]  # fnmatch patterns on posix paths

Relative ``paths`` entries resolve against the directory containing the
``pyproject.toml``, so ``repro-lint`` works from any cwd.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, replace
from pathlib import Path

__all__ = ["LintConfig", "find_pyproject", "load_config"]

_TABLE_KEYS = frozenset({"paths", "enable", "disable", "exclude"})


@dataclass(frozen=True)
class LintConfig:
    """Resolved analyzer configuration."""

    enable: tuple[str, ...] = ()
    disable: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    paths: tuple[str, ...] = ()
    source: str = "<defaults>"

    def merged_with_cli(
        self,
        enable: tuple[str, ...] = (),
        disable: tuple[str, ...] = (),
        exclude: tuple[str, ...] = (),
    ) -> "LintConfig":
        """CLI flags narrow the project config; they never widen it."""
        return replace(
            self,
            enable=tuple(enable) or self.enable,
            disable=self.disable + tuple(disable),
            exclude=self.exclude + tuple(exclude),
        )


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(
    pyproject: Path | None = None, start: Path | None = None
) -> LintConfig:
    """Load ``[tool.repro-lint]``; missing file/table yields defaults."""
    if pyproject is None:
        pyproject = find_pyproject(start or Path.cwd())
    if pyproject is None or not Path(pyproject).is_file():
        return LintConfig()
    pyproject = Path(pyproject)
    data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    table = data.get("tool", {}).get("repro-lint", {})
    unknown = set(table) - _TABLE_KEYS
    if unknown:
        raise ValueError(
            f"unknown [tool.repro-lint] keys in {pyproject}: {sorted(unknown)}"
        )
    root = pyproject.parent
    paths = tuple(
        str(path) if Path(path).is_absolute() else str(root / path)
        for path in table.get("paths", ())
    )
    return LintConfig(
        enable=tuple(table.get("enable", ())),
        disable=tuple(table.get("disable", ())),
        exclude=tuple(table.get("exclude", ())),
        paths=paths,
        source=str(pyproject),
    )
