"""Deterministic per-retry RNG streams via seed-sequence spawning.

A retried epoch must not replay the identical failing draw (that would
re-diverge deterministically) but must stay fully reproducible given the
same base seed and retry history.  ``spawn_stream(seed, epoch, attempt)``
gives every (epoch, attempt) pair its own statistically independent
stream derived from the base seed — the standard
:class:`numpy.random.SeedSequence` spawn-key construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_stream", "spawn_seed"]


def spawn_stream(seed: int, *spawn_key: int) -> np.random.Generator:
    """A generator for the stream ``spawn_key`` derived from ``seed``.

    With an empty ``spawn_key`` this is exactly
    ``np.random.default_rng(seed)``, so attempt 0 of any retried
    operation reproduces the historical unretried behaviour bit for bit.
    """
    if not spawn_key:
        return np.random.default_rng(seed)
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=spawn_key))


def spawn_seed(seed: int, *spawn_key: int) -> int:
    """A derived integer seed for APIs that only accept plain ints."""
    if not spawn_key:
        return seed
    sequence = np.random.SeedSequence(seed, spawn_key=spawn_key)
    return int(sequence.generate_state(1, dtype=np.uint64)[0])
