"""RPR002 bad fixture: unguarded scoring in an inference-scoped module."""

from repro.kge.evaluation import compute_ranks


def rank_candidates(model, candidates, train):
    scores = model.scores_spo(candidates)
    ranks = compute_ranks(model, candidates, filter_triples=train)
    return scores, ranks
