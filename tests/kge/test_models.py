"""Model-interface tests applied uniformly to all six KGE models.

The key invariant: ``score_sp`` / ``score_po`` must agree column-by-column
with ``score_spo`` — the all-entities forms are vectorised shortcuts, not
different scoring functions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.kge import available_models, create_model

N_ENTITIES = 12
N_RELATIONS = 3
DIM = 8

ALL_MODELS = [
    "transe", "distmult", "complex", "rescal", "hole", "conve",
    "rotate", "simple", "tucker",
]


@pytest.fixture(params=ALL_MODELS)
def model(request):
    m = create_model(
        request.param,
        num_entities=N_ENTITIES,
        num_relations=N_RELATIONS,
        dim=DIM,
        seed=1,
    )
    m.eval()  # deterministic scoring (dropout off, running BN stats)
    # Run one training-mode batch so ConvE's batch-norm running stats are
    # non-degenerate before eval-mode scoring.
    m.train()
    with no_grad():
        m.score_sp(np.arange(N_ENTITIES), np.zeros(N_ENTITIES, dtype=np.int64))
    m.eval()
    return m


class TestRegistry:
    def test_all_models_registered(self):
        assert set(ALL_MODELS) <= set(available_models())

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            create_model("transformer", num_entities=4, num_relations=1, dim=4)

    def test_duplicate_registration_rejected(self):
        from repro.kge.base import register_model

        with pytest.raises(ValueError):

            @register_model("transe")
            class Duplicate:  # pragma: no cover - definition itself raises
                pass

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            create_model("transe", num_entities=4, num_relations=1, dim=0)


class TestScoringInterface:
    def test_score_spo_shape(self, model):
        s = np.asarray([0, 1, 2])
        r = np.asarray([0, 1, 2])
        o = np.asarray([3, 4, 5])
        scores = model.scores_spo(np.stack([s, r, o], axis=1))
        assert scores.shape == (3,)
        assert np.isfinite(scores).all()

    def test_score_sp_shape(self, model):
        scores = model.scores_sp(np.asarray([0, 1]), np.asarray([0, 1]))
        assert scores.shape == (2, N_ENTITIES)
        assert np.isfinite(scores).all()

    def test_score_po_shape(self, model):
        scores = model.scores_po(np.asarray([0, 1]), np.asarray([2, 3]))
        assert scores.shape == (2, N_ENTITIES)
        assert np.isfinite(scores).all()

    def test_score_sp_consistent_with_spo(self, model):
        """Column o of score_sp(s, r) must equal score_spo(s, r, o)."""
        s = np.asarray([0, 3, 7])
        r = np.asarray([0, 1, 2])
        rows = model.scores_sp(s, r)
        for o in range(N_ENTITIES):
            direct = model.scores_spo(
                np.stack([s, r, np.full(3, o)], axis=1)
            )
            np.testing.assert_allclose(rows[:, o], direct, rtol=1e-9, atol=1e-9)

    def test_score_po_consistent_with_spo(self, model):
        """Column s of score_po(r, o) must equal score_spo(s, r, o)."""
        r = np.asarray([0, 1])
        o = np.asarray([5, 9])
        rows = model.scores_po(r, o)
        for s in range(N_ENTITIES):
            direct = model.scores_spo(
                np.stack([np.full(2, s), r, o], axis=1)
            )
            np.testing.assert_allclose(rows[:, s], direct, rtol=1e-9, atol=1e-9)

    def test_embedding_matrices_shapes(self, model):
        assert model.entity_matrix().shape[0] == N_ENTITIES
        assert model.relation_matrix().shape[0] == N_RELATIONS

    def test_deterministic_given_seed(self):
        for name in ALL_MODELS:
            a = create_model(name, num_entities=6, num_relations=2, dim=8, seed=3)
            b = create_model(name, num_entities=6, num_relations=2, dim=8, seed=3)
            np.testing.assert_array_equal(a.entity_matrix(), b.entity_matrix())


class TestModelSpecifics:
    def test_transe_invalid_norm(self):
        with pytest.raises(ValueError):
            create_model("transe", num_entities=4, num_relations=1, dim=4, norm="l3")

    def test_transe_normalized_entities(self):
        m = create_model("transe", num_entities=8, num_relations=2, dim=6)
        norms = np.linalg.norm(m.entity_matrix(), axis=1)
        np.testing.assert_allclose(norms, 1.0)

    def test_complex_requires_even_dim(self):
        with pytest.raises(ValueError):
            create_model("complex", num_entities=4, num_relations=1, dim=7)

    def test_rescal_relation_matrix_is_dim_squared(self):
        m = create_model("rescal", num_entities=4, num_relations=2, dim=5)
        assert m.relation_matrix().shape == (2, 25)

    def test_conve_grid_shape_divides_dim(self):
        m = create_model("conve", num_entities=6, num_relations=2, dim=24)
        assert m.emb_h * m.emb_w == 24

    def test_conve_invalid_height(self):
        with pytest.raises(ValueError):
            create_model(
                "conve", num_entities=6, num_relations=2, dim=24, embedding_height=5
            )

    def test_transe_scores_are_nonpositive(self):
        m = create_model("transe", num_entities=6, num_relations=2, dim=8)
        scores = m.scores_sp(np.asarray([0]), np.asarray([0]))
        assert (scores <= 0).all()
