"""Fact discovery from knowledge graph embeddings — the paper's core task.

* :func:`discover_facts` — Algorithm 1, sampling-based candidate
  generation plus KGE ranking (optionally rule-pruned).
* The six sampling strategies of §3.1.2 via :func:`create_strategy`.
* :func:`exhaustive_discover_facts` + :class:`RuleFilter` — the
  CHAI-style exhaustive baseline of §5.1.
* :mod:`repro.discovery.metrics` — MRR / efficiency / long-tail metrics.
* :mod:`repro.discovery.exploration` — exploration-aware strategies
  (tempered/inverse frequency, mixtures, PageRank), the paper's §6
  first future direction.
* :mod:`repro.discovery.protocol` — the held-out evaluation protocol,
  the paper's §6 third future direction.
"""

from .anytime import AnytimeResult, anytime_discover
from .config import DiscoveryConfig
from .discover import MAX_GENERATION_ITERATIONS, DiscoveryResult, discover_facts
from .exhaustive import exhaustive_discover_facts
from .exploration import (
    InverseFrequency,
    MixtureStrategy,
    PageRankStrategy,
    TemperedFrequency,
    pagerank,
)
from .metrics import (
    compare_results,
    discovery_mrr,
    efficiency_facts_per_hour,
    long_tail_coverage,
    theoretical_mrr_floor,
)
from .protocol import ProtocolResult, heldout_discovery_protocol, hide_triples
from .rules import RuleFilter
from .strategies import (
    STRATEGY_ABBREVIATIONS,
    ClusteringCoefficient,
    ClusteringSquares,
    ClusteringTriangles,
    EntityFrequency,
    GraphDegree,
    RelationScopedFrequency,
    SamplingStrategy,
    UniformRandom,
    available_strategies,
    create_strategy,
)

#: The six strategies evaluated by the paper, in presentation order.
PAPER_STRATEGY_NAMES = (
    "uniform_random",
    "entity_frequency",
    "graph_degree",
    "cluster_coefficient",
    "cluster_triangles",
    "cluster_squares",
)

__all__ = [
    "discover_facts",
    "DiscoveryConfig",
    "DiscoveryResult",
    "AnytimeResult",
    "anytime_discover",
    "MAX_GENERATION_ITERATIONS",
    "exhaustive_discover_facts",
    "RuleFilter",
    "SamplingStrategy",
    "UniformRandom",
    "EntityFrequency",
    "GraphDegree",
    "ClusteringCoefficient",
    "ClusteringTriangles",
    "ClusteringSquares",
    "RelationScopedFrequency",
    "TemperedFrequency",
    "InverseFrequency",
    "MixtureStrategy",
    "PageRankStrategy",
    "pagerank",
    "available_strategies",
    "create_strategy",
    "STRATEGY_ABBREVIATIONS",
    "PAPER_STRATEGY_NAMES",
    "discovery_mrr",
    "efficiency_facts_per_hour",
    "theoretical_mrr_floor",
    "long_tail_coverage",
    "compare_results",
    "ProtocolResult",
    "hide_triples",
    "heldout_discovery_protocol",
]
