"""Concurrency guarantees: coalescing, warm eviction, deadline isolation."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.api import RankRequest, Session
from repro.kge.ranking import RankingEngine
from repro.serve import ServeApp, SingleFlight

_JOIN_SECONDS = 30.0


def _run_threads(count, target):
    """Start ``count`` threads on ``target(index)`` and join them all."""
    errors = []

    def wrap(index):
        try:
            target(index)
        except BaseException as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=wrap, args=(i,), daemon=True)
        for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=_JOIN_SECONDS)
        assert not thread.is_alive(), "worker thread wedged"
    if errors:
        raise errors[0]
    return threads


class TestSingleFlight:
    def test_concurrent_callers_share_one_execution(self):
        flight = SingleFlight()
        gate = threading.Event()
        calls = []
        results = [None] * 8
        barrier = threading.Barrier(8)

        def supplier():
            calls.append(1)
            assert gate.wait(timeout=_JOIN_SECONDS)
            return ("payload",)

        def worker(index):
            barrier.wait(timeout=_JOIN_SECONDS)
            if index == 0:
                # Give followers a beat to pile onto the in-flight call,
                # then release the leader's supplier.
                threading.Timer(0.05, gate.set).start()
            results[index] = flight.run("key", supplier)

        _run_threads(8, worker)
        assert len(calls) == 1
        assert all(value is results[0] for value in results)
        assert flight.counters() == {"leads_count": 1, "coalesced_count": 7}

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        assert flight.run("a", lambda: 1) == 1
        assert flight.run("b", lambda: 2) == 2
        assert flight.counters() == {"leads_count": 2, "coalesced_count": 0}

    def test_leader_failure_propagates_to_every_waiter(self):
        flight = SingleFlight()
        gate = threading.Event()
        boom = RuntimeError("supplier exploded")
        caught = [None] * 4
        barrier = threading.Barrier(4)

        def supplier():
            assert gate.wait(timeout=_JOIN_SECONDS)
            raise boom

        def worker(index):
            barrier.wait(timeout=_JOIN_SECONDS)
            if index == 0:
                threading.Timer(0.05, gate.set).start()
            try:
                flight.run("key", supplier)
            except RuntimeError as error:
                caught[index] = error

        _run_threads(4, worker)
        assert all(error is boom for error in caught)
        # A failed flight is not cached: the next run executes afresh.
        assert flight.run("key", lambda: "recovered") == "recovered"


class TestServedCoalescing:
    def test_identical_requests_are_bit_identical_and_coalesced(
        self, session, model_id, test_triples, trained_distmult, tiny_graph
    ):
        app = ServeApp(session)
        body = RankRequest(model=model_id, triples=test_triples).to_bytes()
        n = 12
        barrier = threading.Barrier(n)
        responses = [None] * n

        def worker(index):
            barrier.wait(timeout=_JOIN_SECONDS)
            responses[index] = app.handle("POST", "/v1/rank", body)

        _run_threads(n, worker)
        statuses = {status for status, _, _ in responses}
        assert statuses == {200}
        payloads = {payload for _, _, payload in responses}
        assert len(payloads) == 1  # bit-identical bytes across all threads

        ranks = json.loads(payloads.pop())["ranks"]
        offline = RankingEngine().compute_ranks(
            trained_distmult,
            np.asarray(test_triples, dtype=np.int64),
            filter_triples=tiny_graph.train,
            side="object",
        )
        np.testing.assert_array_equal(np.asarray(ranks), offline)

        counters = app.coalescing_counters()
        assert counters["leads_count"] + counters["coalesced_count"] == n
        assert counters["leads_count"] >= 1

    def test_eviction_pressure_never_corrupts_results(
        self, make_registry, alt_checkpoints, tiny_graph, test_triples
    ):
        """Two models thrashing a capacity-1 registry stay bit-correct."""
        registry = make_registry(capacity=1)
        session = Session(registry)
        refs = [
            session.add_model("tiny", path) for path in alt_checkpoints[:2]
        ]
        app = ServeApp(session)

        from repro.kge import load_model

        triples = np.asarray(test_triples, dtype=np.int64)
        expected = {}
        for ref, path in zip(refs, alt_checkpoints):
            model = load_model(path)
            expected[ref.model_id] = RankingEngine().compute_ranks(
                model, triples, filter_triples=tiny_graph.train, side="object"
            )

        rounds = 6
        failures = []

        def worker(index):
            ref = refs[index % 2]
            body = RankRequest(
                model=ref.model_id, triples=test_triples
            ).to_bytes()
            for _ in range(rounds):
                status, _, payload = app.handle("POST", "/v1/rank", body)
                if status != 200:
                    failures.append(payload)
                    return
                ranks = np.asarray(json.loads(payload)["ranks"])
                if not np.array_equal(ranks, expected[ref.model_id]):
                    failures.append(payload)
                    return

        _run_threads(4, worker)
        assert not failures, failures[0]
        # Cold side evicted, but never an in-flight (pinned) entry.
        assert len(registry.loaded_ids()) <= 2


class TestDeadlines:
    def test_expired_deadline_maps_to_504_envelope(
        self, session, model_id, test_triples
    ):
        app = ServeApp(session, deadline_seconds=1e-6)
        body = RankRequest(model=model_id, triples=test_triples).to_bytes()
        status, content_type, payload = app.handle("POST", "/v1/rank", body)
        assert status == 504
        assert content_type == "application/json"
        envelope = json.loads(payload)
        assert envelope["error"]["code"] == "deadline_exceeded"

    def test_timeout_does_not_poison_the_score_cache(
        self, session, model_id, test_triples, trained_distmult, tiny_graph
    ):
        body = RankRequest(model=model_id, triples=test_triples).to_bytes()
        strict = ServeApp(session, deadline_seconds=1e-6)
        status, _, _ = strict.handle("POST", "/v1/rank", body)
        assert status == 504

        relaxed = ServeApp(session)  # same session, same warm registry
        status, _, payload = relaxed.handle("POST", "/v1/rank", body)
        assert status == 200
        offline = RankingEngine().compute_ranks(
            trained_distmult,
            np.asarray(test_triples, dtype=np.int64),
            filter_triples=tiny_graph.train,
            side="object",
        )
        np.testing.assert_array_equal(
            np.asarray(json.loads(payload)["ranks"]), offline
        )
