"""Blocked/tiled CSR kernels for the clustering statistics.

The triangle- and square-based metrics all reduce to one expensive
object: the two-hop count matrix ``T = A @ A`` whose entry ``T[v, x]``
is the number of common neighbours of ``v`` and ``x``.  ``T`` has
``Θ(Σ_v deg(v)²)`` non-zeros — on a YAGO3-10-scale graph that is orders
of magnitude more than ``A`` itself and must never be materialised
whole.  The kernels here compute ``T`` one *node block* at a time:
blocks are sized adaptively from a per-row work estimate so each
``A[lo:hi] @ A`` slab stays under a configurable memory budget, the
per-node reductions are taken, and the slab is freed before the next
block starts.

Everything is exact int64 arithmetic until the final coefficient
division, which makes every kernel bit-identical to the retained
reference implementations (see ``tests/kg/test_blocked.py``):

* :func:`local_triangles_blocked` — ``T(v) = Σ_{u∈N(v)} T[v, u] / 2``,
  the rowsum of ``A ⊙ T`` halved.
* :func:`square_clustering_blocked` — the Zhang–Horvath squares
  coefficient via three per-row reductions of the same slab.  With
  ``t_x = T[v, x]``, ``k = deg(v)``, ``S₂ = Σ_x t_x²`` and
  ``D = Σ_{u∈N(v)} deg(u)``::

      Σ_{a<b} q_v(u_a, u_b)            = (S₂ − D)/2 − k(k−1)/2
      Σ_{a<b} [a_v + q_v](u_a, u_b)    = (k−1)·D − k(k−1) − num − 2·T(v)

  i.e. the O(k²) pairwise loop over common-neighbour intersections
  collapses into sparse row reductions — no per-pair work at all.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "DEFAULT_MEMORY_BUDGET",
    "plan_node_blocks",
    "iter_two_hop_blocks",
    "local_triangles_blocked",
    "square_clustering_blocked",
]

#: Default per-slab memory budget (bytes) for the two-hop products.
DEFAULT_MEMORY_BUDGET = 64 << 20

#: Estimated bytes per stored non-zero of a CSR slab (8 B data + 4–8 B
#: index, doubled for scipy's matmul workspace).
_BYTES_PER_NNZ = 32


def plan_node_blocks(
    adj: sp.csr_matrix, memory_budget: int = DEFAULT_MEMORY_BUDGET
) -> np.ndarray:
    """Split ``range(n)`` into contiguous blocks under the memory budget.

    The work (and slab nnz upper bound) of row ``v`` of ``A @ A`` is
    ``min(Σ_{u∈N(v)} deg(u), n)``; blocks are cut greedily so each
    block's estimated slab size fits the budget.  Returns the block
    boundaries as an increasing array ``[0, b₁, …, n]``.  A single row
    over budget still gets its own block — the budget bounds slabs, it
    cannot refuse work.
    """
    n = adj.shape[0]
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    deg = np.diff(adj.indptr).astype(np.int64)
    two_hop = np.minimum(adj @ deg, n)
    row_bytes = np.maximum(two_hop, 1) * _BYTES_PER_NNZ
    budget = max(int(memory_budget), _BYTES_PER_NNZ)
    bounds = [0]
    acc = 0
    for v in range(n):
        if acc and acc + row_bytes[v] > budget:
            bounds.append(v)
            acc = 0
        acc += row_bytes[v]
    bounds.append(n)
    return np.asarray(bounds, dtype=np.int64)


def iter_two_hop_blocks(
    adj: sp.csr_matrix, memory_budget: int = DEFAULT_MEMORY_BUDGET
):
    """Yield ``(lo, hi, A_block, T_block)`` slabs of the two-hop product.

    ``A_block = adj[lo:hi]`` and ``T_block = A_block @ adj``; each slab
    is dropped before the next is built, keeping the resident footprint
    proportional to the budget rather than to ``Σ deg²``.
    """
    bounds = plan_node_blocks(adj, memory_budget)
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        a_block = adj[int(lo) : int(hi)]
        yield int(lo), int(hi), a_block, a_block @ adj


def _row_sums(matrix: sp.csr_matrix) -> np.ndarray:
    return np.asarray(matrix.sum(axis=1)).ravel().astype(np.int64)


def local_triangles_blocked(
    adj: sp.csr_matrix, memory_budget: int = DEFAULT_MEMORY_BUDGET
) -> np.ndarray:
    """Triangles through each node, slab by slab (exact int64 counts)."""
    n = adj.shape[0]
    out = np.zeros(n, dtype=np.int64)
    for lo, hi, a_block, t_block in iter_two_hop_blocks(adj, memory_budget):
        closed = a_block.multiply(t_block)
        out[lo:hi] = _row_sums(closed) // 2
    return out


def square_clustering_blocked(
    adj: sp.csr_matrix, memory_budget: int = DEFAULT_MEMORY_BUDGET
) -> np.ndarray:
    """Squares clustering coefficient per node, slab by slab.

    Bit-identical to :func:`repro.kg.stats.square_clustering_reference`:
    numerator and denominator are exact int64 sums (every intermediate
    is a count), and the single float64 division at the end divides the
    same two integers the reference divides.
    """
    n = adj.shape[0]
    deg = np.diff(adj.indptr).astype(np.int64)
    coeff = np.zeros(n, dtype=np.float64)
    for lo, hi, a_block, t_block in iter_two_hop_blocks(adj, memory_budget):
        k = deg[lo:hi]
        # S₂ = Σ_x T[v, x]² per row of the slab.
        data_sq = t_block.data.astype(np.int64)
        np.square(data_sq, out=data_sq)
        indptr = t_block.indptr
        s2 = np.add.reduceat(
            np.concatenate([data_sq, np.zeros(1, dtype=np.int64)]),
            np.minimum(indptr[:-1], data_sq.shape[0]),
        )
        s2[np.diff(indptr) == 0] = 0
        # D = Σ_{u∈N(v)} deg(u) per row.
        dsum = (a_block @ deg).astype(np.int64)
        # 2·T(v) = Σ_{u∈N(v)} T[v, u].
        wedge = _row_sums(a_block.multiply(t_block))
        pairs2 = k * (k - 1)  # 2 · (k choose 2)
        num = (s2 - dsum) // 2 - pairs2 // 2
        denom = (k - 1) * dsum - pairs2 - num - wedge
        valid = denom > 0
        coeff[lo:hi][valid] = num[valid].astype(np.float64) / denom[
            valid
        ].astype(np.float64)
    return coeff
