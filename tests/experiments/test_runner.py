"""Tests for the experiment runner and its model cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    PAPER_DATASETS,
    PAPER_MODELS,
    PAPER_STRATEGIES,
    clear_model_cache,
    default_model_config,
    default_train_config,
    get_trained_model,
    run_matrix,
)


class TestConstants:
    def test_paper_models(self):
        assert set(PAPER_MODELS) == {"complex", "conve", "distmult", "rescal", "transe"}

    def test_paper_strategies_exclude_squares(self):
        assert "cluster_squares" not in PAPER_STRATEGIES
        assert len(PAPER_STRATEGIES) == 5

    def test_paper_datasets(self):
        assert len(PAPER_DATASETS) == 4


class TestDefaults:
    def test_every_paper_model_has_defaults(self):
        for name in PAPER_MODELS:
            assert default_model_config(name).name == name
            default_train_config(name)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            default_model_config("gnn")


class TestModelCache:
    def test_in_process_cache_returns_same_object(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        a = get_trained_model("wn18rr-like", "distmult")
        b = get_trained_model("wn18rr-like", "distmult")
        assert a is b

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        a = get_trained_model("wn18rr-like", "distmult")
        clear_model_cache()  # drop in-process entry; force disk load
        b = get_trained_model("wn18rr-like", "distmult")
        assert a is not b
        np.testing.assert_array_equal(a.entity_matrix(), b.entity_matrix())

    def test_stale_disk_cache_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        get_trained_model("wn18rr-like", "distmult")
        # Corrupt the cache with wrong keys.
        path = tmp_path / "wn18rr-like__distmult.npz"
        np.savez(path, bogus=np.zeros(3))
        clear_model_cache()
        model = get_trained_model("wn18rr-like", "distmult")
        assert model.entity_matrix().shape[0] > 0

    def test_corrupt_disk_cache_recovers(self, tmp_path, monkeypatch):
        """A truncated .npz (not a valid zip) triggers retraining and is
        rewritten, not propagated as BadZipFile."""
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        a = get_trained_model("wn18rr-like", "distmult")
        path = tmp_path / "wn18rr-like__distmult.npz"
        path.write_bytes(path.read_bytes()[:100])
        clear_model_cache()
        b = get_trained_model("wn18rr-like", "distmult")
        np.testing.assert_array_equal(a.entity_matrix(), b.entity_matrix())
        # The rewritten cache file is loadable again.
        np.load(path).close()

    def test_trained_model_is_in_eval_mode(self, tmp_path, monkeypatch):
        """Both the retrain and the cache-load paths return eval()-mode
        models — batched ConvE scoring depends on it (batch norm)."""
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        fresh = get_trained_model("wn18rr-like", "distmult")
        assert not fresh.training
        clear_model_cache()
        cached = get_trained_model("wn18rr-like", "distmult")
        assert not cached.training


class TestRunMatrix:
    @pytest.fixture(scope="class")
    def rows(self, tmp_path_factory):
        import os

        os.environ["REPRO_MODEL_CACHE"] = str(tmp_path_factory.mktemp("cache"))
        clear_model_cache()
        try:
            return run_matrix(
                datasets=("wn18rr-like",),
                models=("distmult",),
                strategies=("uniform_random", "entity_frequency"),
                top_n=50,
                max_candidates=100,
            )
        finally:
            os.environ.pop("REPRO_MODEL_CACHE", None)
            clear_model_cache()

    def test_row_count(self, rows):
        assert len(rows) == 2

    def test_rows_carry_metrics(self, rows):
        for row in rows:
            assert row.dataset == "wn18rr-like"
            assert row.model == "distmult"
            assert row.num_facts >= 0
            assert row.runtime_seconds > 0

    def test_strategy_labels(self, rows):
        assert {row.strategy for row in rows} == {
            "uniform_random", "entity_frequency",
        }
