"""Bidirectional label ↔ integer-id mapping for entities and relations.

Knowledge-graph triples are stored as integer arrays throughout the library;
the vocabulary is the single place where human-readable labels live.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = ["Vocabulary"]


class Vocabulary:
    """An append-only mapping of string labels to dense integer ids.

    Ids are assigned in insertion order starting at zero, which keeps them
    usable directly as row indices into embedding matrices.
    """

    def __init__(self, labels: Iterable[str] = ()) -> None:
        self._label_to_id: dict[str, int] = {}
        self._labels: list[str] = []
        for label in labels:
            self.add(label)

    def add(self, label: str) -> int:
        """Insert ``label`` if new and return its id."""
        existing = self._label_to_id.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        self._label_to_id[label] = new_id
        self._labels.append(label)
        return new_id

    def id_of(self, label: str) -> int:
        """Return the id of ``label``; raises ``KeyError`` if unknown."""
        return self._label_to_id[label]

    def label_of(self, idx: int) -> str:
        """Return the label of id ``idx``; raises ``IndexError`` if unknown."""
        if idx < 0:
            raise IndexError(f"vocabulary ids are non-negative, got {idx}")
        return self._labels[idx]

    def __contains__(self, label: str) -> bool:
        return label in self._label_to_id

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._labels == other._labels

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)})"

    @property
    def labels(self) -> list[str]:
        """All labels in id order (copy)."""
        return list(self._labels)

    @classmethod
    def from_range(cls, prefix: str, count: int) -> "Vocabulary":
        """Create a vocabulary of ``count`` synthetic labels ``prefix_i``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return cls(f"{prefix}_{i}" for i in range(count))
