"""Crash-safe process-pool scheduling of journalled campaign cells.

:class:`ParallelScheduler` dispatches independent *cells* (one unit of
campaign work, e.g. one ``dataset/model/strategy`` matrix entry) across
a spawn-based :class:`~concurrent.futures.ProcessPoolExecutor` while
keeping the exact semantics of the serial resilience stack:

* the PR-3 :class:`~repro.resilience.RunJournal` stays the source of
  truth — ``cell_started`` is written *before* a cell is handed to a
  worker, so a worker killed mid-cell still consumes an attempt on
  resume, exactly like a process crash in the serial runner;
* every dispatch derives its own RNG stream via
  :func:`~repro.resilience.spawn_stream` ``(seed, index, attempt)``, so
  retries never replay the identical failing draw yet remain fully
  deterministic;
* outcomes are merged **in submission order**, so the result list is
  independent of worker completion order;
* a cell whose attempt budget is exhausted degrades exactly as
  ``on_error="degrade"`` does serially: the failure fingerprint is
  journalled and surfaced in the outcome instead of aborting the run.

Worker functions must be module-level picklable callables (lint rule
RPR015 enforces this for in-repo call sites) with the signature
``worker(context, payload, rng)``; ``context`` is the scheduler's
``context`` object, shipped once per worker process through the pool
initializer rather than once per cell.
"""

from __future__ import annotations

import logging
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Callable

from ..obs import MetricsRegistry, flatten_spans, get_registry, span, use_registry
from ..resilience import ResilienceError, RunJournal, error_fingerprint, spawn_stream

logger = logging.getLogger(__name__)

__all__ = ["Cell", "CellOutcome", "WorkerCrashError", "ParallelScheduler"]


class WorkerCrashError(ResilienceError):
    """A worker process died (segfault, OOM-kill, os._exit) mid-cell."""


@dataclass(frozen=True)
class Cell:
    """One schedulable unit of work.

    ``payload`` is handed to the worker function verbatim and must be
    picklable; keep it small — large shared inputs (graphs, embedding
    handles) belong in the scheduler ``context`` or in shared memory.
    """

    key: str
    payload: object = None


@dataclass
class CellOutcome:
    """Result of one cell after scheduling (status ``ok`` or ``failed``)."""

    key: str
    value: object = None
    status: str = "ok"
    error: str = ""
    attempts: int = 0
    trace: dict = field(default_factory=dict)


def _pool_initializer(context: object) -> None:
    """Spawn-side bootstrap: stash the shared context for this process."""
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context


_WORKER_CONTEXT: object = None


def _run_cell(
    worker: Callable,
    index: int,
    attempt: int,
    seed: int,
    payload: object,
    capture_trace: bool,
) -> tuple[object, dict]:
    """Module-level dispatch wrapper executed inside a worker process.

    Re-seeds deterministically per (cell index, attempt) via
    :func:`spawn_stream` and, when the parent has observability enabled,
    records the worker-side span subtree so the parent can attach it to
    the outcome.
    """
    rng = spawn_stream(seed, index, attempt)
    if not capture_trace:
        return worker(_WORKER_CONTEXT, payload, rng), {}
    registry = MetricsRegistry()
    with use_registry(registry):
        with span("parallel.cell"):
            value = worker(_WORKER_CONTEXT, payload, rng)
    return value, flatten_spans(registry.snapshot()["spans"])


class ParallelScheduler:
    """Dispatch cells across a spawn pool with journalled retry budgets.

    Parameters
    ----------
    worker:
        Module-level callable ``worker(context, payload, rng) -> value``.
    procs:
        Worker process count (the submission window is ``2 * procs`` so a
        pool crash can only burn attempts for cells already in flight).
    context:
        Arbitrary picklable object shipped once per worker process.
    seed:
        Base seed for the per-cell ``spawn_stream(seed, index, attempt)``
        streams handed to workers.
    journal:
        Optional :class:`RunJournal`; events mirror the serial runner
        (``cell_started`` / ``cell_succeeded`` / ``cell_failed``).
    on_error:
        ``"raise"`` aborts on the first cell failure (journal preserves
        progress), ``"degrade"`` retries up to ``max_attempts`` starts
        per cell and then emits a failed outcome.  Worker *crashes* (a
        process dying, not an exception) are retried within the attempt
        budget in both modes — serially a crash takes the whole campaign
        down and the journal resumes it, so retrying is the parallel
        equivalent; ``"raise"`` still propagates once the budget is gone.
    """

    def __init__(
        self,
        worker: Callable,
        procs: int,
        context: object = None,
        seed: int = 0,
        journal: RunJournal | None = None,
        max_attempts: int = 3,
        on_error: str = "raise",
    ) -> None:
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        if on_error not in ("raise", "degrade"):
            raise ValueError(f"on_error must be 'raise' or 'degrade', got {on_error!r}")
        self.worker = worker
        self.procs = procs
        self.context = context
        self.seed = seed
        self.journal = journal
        self.max_attempts = max_attempts
        self.on_error = on_error

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.procs,
            mp_context=get_context("spawn"),
            initializer=_pool_initializer,
            initargs=(self.context,),
        )

    def run(
        self,
        cells: list[Cell],
        attempts: dict[str, int] | None = None,
    ) -> list[CellOutcome]:
        """Execute ``cells``, returning outcomes in submission order.

        ``attempts`` carries starts already consumed by earlier runs of
        the same journal (resume); a cell is only dispatched while its
        total start count stays below ``max_attempts``.
        """
        registry = get_registry()
        attempts = dict(attempts or {})
        outcomes: list[CellOutcome | None] = [None] * len(cells)
        last_error: dict[str, str] = {}
        pending: deque[tuple[int, Cell]] = deque(enumerate(cells))
        window = 2 * self.procs
        with span("parallel.dispatch"):
            executor = self._new_executor()
            in_flight: dict[Future, tuple[int, Cell, int]] = {}
            try:
                while pending or in_flight:
                    while pending and len(in_flight) < window:
                        index, cell = pending.popleft()
                        attempt = attempts.get(cell.key, 0) + 1
                        attempts[cell.key] = attempt
                        if self.journal is not None:
                            # Workers are separate processes; the journal is
                            # only ever touched from this dispatch thread.
                            # lint: disable=RPR011
                            self.journal.append(
                                "cell_started", cell=cell.key, attempt=attempt
                            )
                        future = executor.submit(
                            _run_cell,
                            self.worker,
                            index,
                            attempt,
                            self.seed,
                            cell.payload,
                            registry.enabled,
                        )
                        in_flight[future] = (index, cell, attempt)
                    done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                    crashed = False
                    for future in done:
                        index, cell, attempt = in_flight.pop(future)
                        try:
                            value, trace = future.result()
                        except BrokenProcessPool:
                            crashed = True
                            self._cell_failed(
                                outcomes, pending, attempts, last_error,
                                index, cell, attempt,
                                WorkerCrashError(
                                    f"worker process died while running {cell.key}"
                                ),
                                registry,
                            )
                        except Exception as error:
                            self._cell_failed(
                                outcomes, pending, attempts, last_error,
                                index, cell, attempt, error, registry,
                            )
                        else:
                            if self.journal is not None:
                                # lint: disable=RPR011 (dispatch thread only)
                                self.journal.append(
                                    "cell_succeeded", cell=cell.key, row=value
                                )
                            registry.counter("parallel.cells_count").inc()
                            outcomes[index] = CellOutcome(
                                key=cell.key,
                                value=value,
                                attempts=attempt,
                                trace=trace,
                            )
                    if crashed:
                        # The pool is unusable: every still-running future
                        # fails with BrokenProcessPool.  Drain them as
                        # crashes, then rebuild the pool and continue.
                        registry.counter("parallel.worker_crashes_count").inc()
                        for future, (index, cell, attempt) in list(in_flight.items()):
                            self._cell_failed(
                                outcomes, pending, attempts, last_error,
                                index, cell, attempt,
                                WorkerCrashError(
                                    f"worker pool broke while {cell.key} was in flight"
                                ),
                                registry,
                            )
                        in_flight.clear()
                        executor.shutdown(wait=False, cancel_futures=True)
                        executor = self._new_executor()
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
        return [outcome for outcome in outcomes if outcome is not None]

    def _cell_failed(
        self,
        outcomes: list[CellOutcome | None],
        pending: deque,
        attempts: dict[str, int],
        last_error: dict[str, str],
        index: int,
        cell: Cell,
        attempt: int,
        error: Exception,
        registry,
    ) -> None:
        """Journal one failed dispatch, then requeue, degrade, or raise."""
        fingerprint = error_fingerprint(error)
        last_error[cell.key] = fingerprint
        registry.counter("parallel.cell_failures_count").inc()
        if self.journal is not None:
            # lint: disable=RPR011 (dispatch thread only)
            self.journal.append(
                "cell_failed", cell=cell.key, attempt=attempt, error=fingerprint
            )
        if self.on_error == "raise" and not isinstance(error, WorkerCrashError):
            raise error
        logger.warning("cell %s failed on attempt %d: %s", cell.key, attempt, fingerprint)
        if attempts.get(cell.key, 0) < self.max_attempts:
            pending.append((index, cell))
        elif self.on_error == "raise":
            raise error
        else:
            outcomes[index] = CellOutcome(
                key=cell.key,
                status="failed",
                error=fingerprint,
                attempts=attempt,
            )
