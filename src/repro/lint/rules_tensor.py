"""RPR003 / RPR004 — autodiff-tape integrity rules.

RPR003 bans in-place mutation of ``Tensor.data`` outside the modules that
own parameter updates (``repro.autograd.optim`` / ``modules`` / the
tensor engine itself).  Writing through ``.data`` bypasses the tape, so a
mutation anywhere else silently corrupts gradients recorded before it.
Constructor-time initialisation (inside ``__init__``) is exempt: no tape
exists before the first forward pass.  Names statically known to hold
scipy.sparse matrices are also exempt — their ``.data`` is the raw CSR
value buffer, not a Tensor's tape-tracked storage.

RPR004 checks backward-closure completeness inside ``repro.autograd``:
an op that attaches two or more parents via ``Tensor._make`` broadcasts,
so each ``_accumulate`` call in its backward closure must either route
the gradient through ``_unbroadcast`` or sit under an explicit
``requires_grad`` guard (the style used when shapes are exact by
construction).  Direct writes to ``.grad`` inside a backward closure are
always flagged — they bypass ``_accumulate``'s requires_grad guard.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .index import scipy_sparse_aliases, sparse_locals
from .rules import ModuleContext, Rule, register_rule

__all__ = ["DataMutationRule", "BackwardClosureRule"]

#: Modules allowed to write through ``Tensor.data``.
_MUTATION_EXEMPT = (
    "repro.autograd.optim",
    "repro.autograd.modules",
    "repro.autograd.tensor",
)

_AUTOGRAD_PREFIX = "repro.autograd"


def _mutated_data_attribute(target: ast.expr) -> ast.Attribute | None:
    """The ``<x>.data`` attribute written by an assignment target, if any."""
    while isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute) and target.attr == "data":
        return target
    return None


@register_rule
class DataMutationRule(Rule):
    rule_id = "RPR003"
    name = "no-data-mutation"
    description = (
        "in-place writes to Tensor.data outside repro.autograd.{optim,"
        "modules} bypass the gradient tape"
    )
    rationale = (
        "``.data`` is the tape's escape hatch: writes through it are "
        "invisible to autograd, so gradients recorded before the write "
        "silently become wrong.  Only the optimizer and module layers "
        "may use it.  Names statically known to hold scipy.sparse "
        "matrices are exempt — their .data is a raw CSR value buffer."
    )
    example = (
        "emb.data[idx] -= lr * g       # RPR003 outside optim/modules\n"
        "\n"
        "adj = sp.csr_matrix(x)\n"
        "adj.data[:] = 1               # exempt: sparse value buffer\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if any(
            ctx.module == exempt or ctx.module.startswith(exempt + ".")
            for exempt in _MUTATION_EXEMPT
        ):
            return
        aliases = scipy_sparse_aliases(ctx.tree)
        yield from self._walk(
            ctx, ctx.tree, in_init=False, aliases=aliases, sparse=frozenset()
        )

    def _walk(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        in_init: bool,
        aliases: frozenset[str],
        sparse: frozenset[str],
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_in_init = in_init or (
                isinstance(child, ast.FunctionDef) and child.name == "__init__"
            )
            child_sparse = sparse
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_sparse = sparse | sparse_locals(child, aliases)
            targets: list[ast.expr] = []
            if isinstance(child, ast.Assign):
                targets = list(child.targets)
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                targets = [child.target]
            for target in targets:
                attribute = _mutated_data_attribute(target)
                if attribute is None or child_in_init:
                    continue
                base = attribute.value
                if isinstance(base, ast.Name) and base.id in sparse:
                    continue  # scipy sparse value buffer, not a Tensor
                yield self.finding(
                    ctx,
                    attribute,
                    "in-place mutation of .data outside "
                    "repro.autograd.{optim,modules} bypasses the tape; "
                    "route updates through an optimizer or Module method",
                )
            yield from self._walk(ctx, child, child_in_init, aliases, child_sparse)


def _contains_unbroadcast(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == "_unbroadcast"
        for sub in ast.walk(node)
    )


def _test_mentions_requires_grad(test: ast.expr) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "requires_grad"
        for sub in ast.walk(test)
    )


@register_rule
class BackwardClosureRule(Rule):
    rule_id = "RPR004"
    name = "backward-closure-completeness"
    description = (
        "multi-parent backward closures must _unbroadcast gradients or "
        "guard each parent with requires_grad; never write .grad directly"
    )
    rationale = (
        "An op with two or more parents broadcasts, so each parent's "
        "gradient must be reduced back to the parent's shape.  A "
        "backward closure that feeds _accumulate a raw gradient "
        "produces misshapen updates only when broadcasting actually "
        "happens — the worst kind of latent bug."
    )
    example = (
        "def backward(grad):\n"
        "    a._accumulate(grad * b.data)              # RPR004\n"
        "    a._accumulate(_unbroadcast(grad * b.data, a.shape))  # ok\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not (
            ctx.module == _AUTOGRAD_PREFIX
            or ctx.module.startswith(_AUTOGRAD_PREFIX + ".")
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name == "backward":
                yield from self._check_grad_writes(ctx, node)
            nested = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef)
            }
            for closure in self._multi_parent_closures(node, nested):
                yield from self._check_accumulates(ctx, closure)

    @staticmethod
    def _multi_parent_closures(
        func: ast.FunctionDef, nested: dict[str, ast.FunctionDef]
    ) -> Iterator[ast.FunctionDef]:
        """Backward closures passed to ``Tensor._make`` with ≥2 parents.

        Only literal parent tuples are sized statically; ops that build
        their parent list dynamically (concatenate/stack/conv2d) are out
        of reach for this check and rely on tests instead.
        """
        for call in ast.walk(func):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "_make"
                and len(call.args) >= 3
            ):
                continue
            parents, backward = call.args[1], call.args[2]
            if (
                isinstance(parents, ast.Tuple)
                and len(parents.elts) >= 2
                and isinstance(backward, ast.Name)
                and backward.id in nested
            ):
                yield nested[backward.id]

    def _check_accumulates(
        self, ctx: ModuleContext, closure: ast.FunctionDef
    ) -> Iterator[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(closure):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        for node in ast.walk(closure):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_accumulate"
            ):
                continue
            if any(_contains_unbroadcast(arg) for arg in node.args):
                continue
            if self._guarded_by_requires_grad(node, parents):
                continue
            yield self.finding(
                ctx,
                node,
                "_accumulate in a multi-parent backward closure neither "
                "routes through _unbroadcast nor sits under a "
                "requires_grad guard; broadcast gradients will be misshapen",
            )

    @staticmethod
    def _guarded_by_requires_grad(
        node: ast.AST, parents: dict[ast.AST, ast.AST]
    ) -> bool:
        current = parents.get(node)
        while current is not None:
            if isinstance(current, ast.If) and _test_mentions_requires_grad(
                current.test
            ):
                return True
            current = parents.get(current)
        return False

    def _check_grad_writes(
        self, ctx: ModuleContext, closure: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(closure):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                while isinstance(target, ast.Subscript):
                    target = target.value
                if isinstance(target, ast.Attribute) and target.attr == "grad":
                    yield self.finding(
                        ctx,
                        target,
                        "direct write to .grad inside a backward closure "
                        "bypasses _accumulate's requires_grad guard",
                    )
