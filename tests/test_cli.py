"""CLI tests — every subcommand exercised in-process."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.kg import save_dataset_dir
from repro.kge import create_model, save_model


@pytest.fixture()
def checkpoint(tmp_path, tiny_graph):
    """A (untrained but valid) checkpoint matching the tiny graph's sizes."""
    model = create_model(
        "distmult",
        num_entities=tiny_graph.num_entities,
        num_relations=tiny_graph.num_relations,
        dim=8,
        seed=0,
    )
    path = tmp_path / "model.npz"
    save_model(model, path)
    return path


@pytest.fixture()
def dataset_dir(tmp_path, tiny_graph):
    """The tiny graph saved as a TSV dataset directory."""
    directory = tmp_path / "tinyds"
    save_dataset_dir(tiny_graph, directory)
    return directory


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train", "wn18rr-like", "distmult"])
        assert args.dim == 32
        assert args.job == "auto"

    def test_discover_strategy_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["discover", "m.npz", "ds", "--strategy", "bogus"]
            )


class TestDatasetsCommand:
    def test_lists_all_replicas(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("fb15k237-like", "wn18rr-like", "yago310-like", "codexl-like"):
            assert name in out


class TestAnalyzeCommand:
    def test_report_printed(self, dataset_dir, capsys):
        assert main(["analyze", str(dataset_dir)]) == 0
        out = capsys.readouterr().out
        assert "Dataset report" in out
        assert "Relation cardinalities" in out

    def test_relations_flag(self, dataset_dir, capsys):
        assert main(["analyze", str(dataset_dir), "--relations"]) == 0
        assert "Per-relation profiles" in capsys.readouterr().out

    def test_leak_section_present(self, dataset_dir, capsys):
        assert main(["analyze", str(dataset_dir), "--leak-threshold", "0.9"]) == 0
        out = capsys.readouterr().out
        assert "leakage" in out


class TestProtocolCommand:
    def test_runs_and_reports(self, dataset_dir, capsys):
        code = main(
            [
                "protocol", str(dataset_dir), "distmult",
                "--epochs", "5", "--dim", "8",
                "--hide-fraction", "0.1",
                "--top-n", "40", "--max-candidates", "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recall" in out and "known_true_precision" in out


class TestTrainCommand:
    def test_trains_and_checkpoints(self, tmp_path, dataset_dir, capsys):
        out_path = tmp_path / "trained.npz"
        code = main(
            [
                "train", str(dataset_dir), "distmult",
                "--epochs", "3", "--dim", "8", "--output", str(out_path),
            ]
        )
        assert code == 0
        assert out_path.is_file()
        assert "validation MRR" in capsys.readouterr().out

    def test_auto_job_picks_negative_sampling_for_transe(self):
        args = build_parser().parse_args(["train", "x", "transe"])
        assert args.job == "auto"  # resolution happens inside _cmd_train

    def test_unknown_dataset_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown dataset"):
            main(["train", "no-such-dataset", "distmult",
                  "--output", str(tmp_path / "x.npz")])


class TestEvaluateCommand:
    def test_prints_metrics(self, checkpoint, dataset_dir, capsys):
        assert main(["evaluate", str(checkpoint), str(dataset_dir)]) == 0
        out = capsys.readouterr().out
        assert "MRR" in out and "Hits@10" in out

    def test_raw_flag(self, checkpoint, dataset_dir, capsys):
        assert main(["evaluate", str(checkpoint), str(dataset_dir), "--raw"]) == 0


class TestDiscoverCommand:
    def test_prints_facts(self, checkpoint, dataset_dir, capsys):
        code = main(
            [
                "discover", str(checkpoint), str(dataset_dir),
                "--top-n", "40", "--max-candidates", "64", "--limit", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "facts discovered" in out

    def test_relation_subset(self, checkpoint, dataset_dir, tmp_path, capsys):
        out_file = tmp_path / "facts.tsv"
        code = main(
            [
                "discover", str(checkpoint), str(dataset_dir),
                "--top-n", "40", "--max-candidates", "64",
                "--relations", "r_0",
                "--output", str(out_file),
            ]
        )
        assert code == 0
        lines = out_file.read_text().strip().splitlines()
        assert lines
        assert all(line.split("\t")[1] == "r_0" for line in lines)

    def test_writes_tsv(self, checkpoint, dataset_dir, tmp_path, capsys):
        out_file = tmp_path / "facts.tsv"
        code = main(
            [
                "discover", str(checkpoint), str(dataset_dir),
                "--top-n", "40", "--max-candidates", "64",
                "--output", str(out_file),
            ]
        )
        assert code == 0
        lines = out_file.read_text().strip().splitlines()
        assert lines
        assert all(len(line.split("\t")) == 4 for line in lines)


class TestCompareCommand:
    def test_compares_selected_strategies(self, checkpoint, dataset_dir, capsys):
        code = main(
            [
                "compare", str(checkpoint), str(dataset_dir),
                "--strategies", "uniform_random", "entity_frequency",
                "--top-n", "40", "--max-candidates", "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "entity_frequency" in out and "uniform_random" in out


class TestReproduceCommand:
    def test_quick_reproduce_writes_tables(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path / "cache"))
        from repro.experiments import clear_model_cache

        clear_model_cache()
        code = main(
            [
                "reproduce", "--quick", "--datasets", "wn18rr-like",
                "--output", str(tmp_path / "out"),
            ]
        )
        assert code == 0
        for name in ("table1", "fig2_runtime", "fig4_mrr", "fig6_efficiency",
                     "summary"):
            assert (tmp_path / "out" / f"{name}.txt").is_file()
        clear_model_cache()


class TestGridCommand:
    def test_grid_table(self, checkpoint, dataset_dir, capsys):
        code = main(
            [
                "grid", str(checkpoint), str(dataset_dir),
                "--top-n-values", "10", "30",
                "--max-candidates-values", "25", "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "max_candidates" in out
        # 2 × 2 grid rows plus header material.
        assert len([l for l in out.splitlines() if l and l[0].isdigit()]) == 4
