"""RPR017 — dense materialisation of graph-scale matrices.

The storage substrate keeps every graph-scale object sparse or blocked:
adjacency matrices are CSR, two-hop products are computed slab by slab
under a memory budget (:mod:`repro.kg.blocked`), and triple columns are
mmap views.  One careless ``.toarray()`` — or an ``np.zeros((n, n))``
scratch buffer — silently re-introduces the Θ(N²) footprint the whole
substrate exists to avoid: at full YAGO3-10 scale a single dense
adjacency is ~121 GiB.

Inside the ``repro.kg`` and ``repro.discovery`` scopes this rule flags:

* ``.toarray()`` / ``.todense()`` calls — densifying a sparse matrix;
* ``np.zeros`` / ``np.ones`` / ``np.empty`` / ``np.full`` allocating a
  *square* 2-D shape ``(x, x)`` where ``x`` is a variable or expression
  (literal constants stay legal: small fixed-size scratch is fine).

The backend-internal modules (``repro.kg.storage``, ``repro.kg.blocked``)
are exempt — blocking and densifying bounded slabs is their job.
Deliberate small-graph densification elsewhere carries an inline
``# lint: disable=RPR017`` with the justification in view.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import ModuleContext, Rule, numpy_aliases, register_rule

__all__ = ["DenseMaterialisationRule"]

_SCOPES = ("repro.kg", "repro.discovery")
_EXEMPT = ("repro.kg.storage", "repro.kg.blocked")
_DENSIFIERS = frozenset({"toarray", "todense"})
_ALLOCATORS = frozenset({"zeros", "ones", "empty", "full"})


def _in_scope(module: str) -> bool:
    if any(module == mod or module.startswith(mod + ".") for mod in _EXEMPT):
        return False
    return any(
        module == scope or module.startswith(scope + ".") for scope in _SCOPES
    )


def _is_square_variable_shape(shape: ast.expr) -> bool:
    """Whether ``shape`` is a 2-tuple of identical non-literal dims."""
    if not isinstance(shape, ast.Tuple) or len(shape.elts) != 2:
        return False
    first, second = shape.elts
    if isinstance(first, ast.Constant) and isinstance(second, ast.Constant):
        return False
    return ast.dump(first) == ast.dump(second)


@register_rule
class DenseMaterialisationRule(Rule):
    rule_id = "RPR017"
    name = "dense-materialisation"
    description = (
        "no dense materialisation of graph-scale matrices in kg/discovery: "
        ".toarray()/.todense() and square N×N allocations are flagged"
    )
    rationale = (
        "Every statistics kernel is written to keep its footprint "
        "proportional to edges (CSR) or to a bounded slab, never to N². "
        "A stray .toarray() or np.zeros((n, n)) works on the 1× replicas "
        "and then OOMs at full dataset scale — ~121 GiB for a dense "
        "YAGO3-10 adjacency.  Densification belongs to the backend "
        "internals (storage/blocked), which are exempt; anywhere else it "
        "must carry an explicit suppression justifying the bound."
    )
    example = (
        "dense = adj.toarray()                 # RPR017: Θ(N²) bytes\n"
        "scores = np.zeros((n, n))             # RPR017: square alloc\n"
        "\n"
        "for lo, hi, a_blk, t_blk in iter_two_hop_blocks(adj, budget):\n"
        "    ...                               # bounded slab instead\n"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not _in_scope(ctx.module):
            return
        np_names = numpy_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _DENSIFIERS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f".{func.attr}() materialises a sparse matrix densely "
                    "(Θ(N²) bytes at graph scale) — keep it CSR, or use "
                    "the blocked kernels in repro.kg.blocked",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _ALLOCATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in np_names
                and node.args
                and _is_square_variable_shape(node.args[0])
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"np.{func.attr} with a square (x, x) shape allocates "
                    "a dense N×N matrix — graph-scale scratch must be "
                    "sparse or slab-bounded (repro.kg.blocked)",
                )
