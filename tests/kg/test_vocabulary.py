"""Unit tests for the label ↔ id vocabulary."""

from __future__ import annotations

import pytest

from repro.kg import Vocabulary


class TestVocabulary:
    def test_insertion_order_ids(self):
        vocab = Vocabulary(["a", "b", "c"])
        assert vocab.id_of("a") == 0
        assert vocab.id_of("c") == 2

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("x")
        second = vocab.add("x")
        assert first == second == 0
        assert len(vocab) == 1

    def test_label_of(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.label_of(1) == "b"

    def test_label_of_negative_raises(self):
        with pytest.raises(IndexError):
            Vocabulary(["a"]).label_of(-1)

    def test_label_of_out_of_range_raises(self):
        with pytest.raises(IndexError):
            Vocabulary(["a"]).label_of(5)

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id_of("missing")

    def test_contains_and_iter(self):
        vocab = Vocabulary(["a", "b"])
        assert "a" in vocab
        assert "z" not in vocab
        assert list(vocab) == ["a", "b"]

    def test_labels_returns_copy(self):
        vocab = Vocabulary(["a"])
        labels = vocab.labels
        labels.append("mutation")
        assert len(vocab) == 1

    def test_equality(self):
        assert Vocabulary(["a", "b"]) == Vocabulary(["a", "b"])
        assert Vocabulary(["a", "b"]) != Vocabulary(["b", "a"])

    def test_from_range(self):
        vocab = Vocabulary.from_range("e", 3)
        assert vocab.labels == ["e_0", "e_1", "e_2"]

    def test_from_range_rejects_negative(self):
        with pytest.raises(ValueError):
            Vocabulary.from_range("e", -1)

    def test_duplicate_labels_in_init_collapse(self):
        vocab = Vocabulary(["a", "a", "b"])
        assert len(vocab) == 2
