"""The unified result API: Reportable protocol and deprecated key aliases."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.obs import DeprecatedKeyDict, Reportable, ReportableMixin, json_default


class TestDeprecatedKeyDict:
    def make(self):
        return DeprecatedKeyDict(
            {"facts_count": 5, "mrr": 0.5},
            {"num_facts": "facts_count"},
            owner="Test.summary()",
        )

    def test_canonical_keys_resolve_silently(self):
        import warnings

        summary = self.make()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert summary["facts_count"] == 5

    def test_alias_resolves_with_warning(self):
        summary = self.make()
        with pytest.deprecated_call(match="use 'facts_count'"):
            assert summary["num_facts"] == 5

    def test_iteration_and_serialisation_are_canonical_only(self):
        summary = self.make()
        assert set(summary) == {"facts_count", "mrr"}
        assert "num_facts" not in json.loads(json.dumps(summary))

    def test_contains_accepts_aliases_silently(self):
        import warnings

        summary = self.make()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert "num_facts" in summary
            assert "facts_count" in summary
            assert "bogus" not in summary

    def test_get_routes_through_alias(self):
        summary = self.make()
        with pytest.deprecated_call():
            assert summary.get("num_facts") == 5
        assert summary.get("bogus", -1) == -1

    def test_unknown_key_raises_keyerror(self):
        with pytest.raises(KeyError):
            self.make()["bogus"]

    def test_alias_must_target_existing_key(self):
        with pytest.raises(KeyError, match="missing canonical key"):
            DeprecatedKeyDict({"a": 1}, {"old": "gone"})


class _Result(ReportableMixin):
    def summary(self):
        return {"facts_count": np.int64(3), "mrr": np.float64(0.25)}


class TestReportableMixin:
    def test_to_dict_copies_summary(self):
        result = _Result()
        payload = result.to_dict()
        assert payload == {"facts_count": 3, "mrr": 0.25}
        payload["facts_count"] = 99
        assert result.to_dict()["facts_count"] == 3

    def test_to_json_handles_numpy_scalars(self):
        assert json.loads(_Result().to_json()) == {"facts_count": 3, "mrr": 0.25}

    def test_summary_must_be_implemented(self):
        class Bare(ReportableMixin):
            pass

        with pytest.raises(NotImplementedError):
            Bare().summary()

    def test_satisfies_protocol(self):
        assert isinstance(_Result(), Reportable)


class TestJsonDefault:
    def test_numpy_scalar_and_array(self):
        assert json_default(np.float32(1.5)) == 1.5
        assert json_default(np.arange(3)) == [0, 1, 2]

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError, match="not JSON serialisable"):
            json_default(object())


class TestResultClassesSpeakReportable:
    def test_ranking_stats_round_trip(self):
        from repro.kge.ranking import RankingStats

        stats = RankingStats()
        stats.candidates_ranked = 10
        stats.rows_scored = 4
        assert isinstance(stats, Reportable)
        clone = RankingStats.from_dict(dict(stats.summary()))
        assert clone.as_dict() == stats.as_dict()

    def test_guard_report_round_trip(self):
        from repro.resilience.guards import GuardReport

        report = GuardReport(rollbacks=2, epoch_retries=1, halted=False)
        assert isinstance(report, Reportable)
        payload = json.loads(report.to_json())
        assert payload["guard_rollbacks_count"] == 2
        # The pre-observability aliases completed their deprecation cycle.
        with pytest.raises(KeyError):
            report.summary()["guard_rollbacks"]

    def test_all_retrofitted_results_satisfy_protocol(self):
        from repro.discovery.anytime import AnytimeResult
        from repro.discovery.discover import DiscoveryResult
        from repro.discovery.protocol import ProtocolResult
        from repro.experiments.gridsearch import GridPoint, GridSearchResult
        from repro.experiments.runner import MatrixRow
        from repro.experiments.workflow import WorkflowReport, WorkflowResult

        for cls in (
            AnytimeResult,
            DiscoveryResult,
            ProtocolResult,
            GridPoint,
            MatrixRow,
            WorkflowReport,
        ):
            assert issubclass(cls, ReportableMixin), cls
        assert GridSearchResult is GridPoint
        assert WorkflowResult is WorkflowReport

    def test_matrix_row_summary_is_canonical_only(self):
        from repro.experiments.runner import MatrixRow

        row = MatrixRow(
            dataset="d",
            model="m",
            strategy="s",
            num_facts=7,
            mrr=0.5,
            runtime_seconds=1.0,
            weight_seconds=0.25,
            efficiency_facts_per_hour=100.0,
        )
        summary = row.summary()
        assert summary["facts_count"] == 7
        # Retired alias: plain dict now, no deprecated lookup path.
        assert "num_facts" not in summary
        with pytest.raises(KeyError):
            summary["num_facts"]
