"""Neural-network building blocks on top of the autodiff tensor.

A deliberately small module system: parameters are discovered recursively
through attributes, there is a train/eval switch, and initialisation
follows the common Xavier/Glorot schemes used by KGE libraries.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from . import ops
from .tensor import Tensor

__all__ = [
    "Module",
    "Parameter",
    "Embedding",
    "Linear",
    "Conv2d",
    "BatchNorm",
    "Dropout",
    "xavier_uniform",
    "xavier_normal",
]


class Parameter(Tensor):
    """A tensor registered as a trainable model parameter.

    ``sparse_grad=True`` opts the parameter into row-sparse gradient
    accumulation for integer-array row lookups (see
    :meth:`Tensor.gather_rows`); dense accumulation stays the default.
    The flag can also be toggled after construction.
    """

    def __init__(self, data: np.ndarray, sparse_grad: bool = False) -> None:
        super().__init__(data, requires_grad=True)
        self.sparse_grad = bool(sparse_grad)


class Module:
    """Base class with recursive parameter discovery and a training flag."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Parameter]:
        """Yield every :class:`Parameter` reachable from this module."""
        seen: set[int] = set()
        stack: list[object] = [self]
        while stack:
            obj = stack.pop()
            if id(obj) in seen:
                continue
            seen.add(id(obj))
            for value in vars(obj).values():
                if isinstance(value, Parameter):
                    if id(value) not in seen:
                        seen.add(id(value))
                        yield value
                elif isinstance(value, Module):
                    stack.append(value)
                elif isinstance(value, (list, tuple)):
                    stack.extend(v for v in value if isinstance(v, Module))

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every reachable submodule."""
        stack: list[Module] = [self]
        seen: set[int] = set()
        while stack:
            module = stack.pop()
            if id(module) in seen:
                continue
            seen.add(id(module))
            yield module
            for value in vars(module).values():
                if isinstance(value, Module):
                    stack.append(value)
                elif isinstance(value, (list, tuple)):
                    stack.extend(v for v in value if isinstance(v, Module))

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat name → array mapping of all parameters (copies)."""
        state: dict[str, np.ndarray] = {}
        self._collect_state(state, prefix="")
        return state

    #: Names of non-trainable ndarray attributes (e.g. batch-norm running
    #: statistics) that belong in the state dict.  Subclasses override.
    buffer_names: tuple[str, ...] = ()

    def _collect_state(self, state: dict[str, np.ndarray], prefix: str) -> None:
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Parameter):
                state[key] = value.data.copy()
            elif isinstance(value, Module):
                value._collect_state(state, prefix=f"{key}.")
        for name in self.buffer_names:
            state[f"{prefix}{name}"] = np.asarray(getattr(self, name)).copy()

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved with :meth:`state_dict` (shape-checked)."""
        params: dict[str, Parameter] = {}
        buffers: dict[str, tuple[Module, str]] = {}
        self._collect_slots(params, buffers, prefix="")
        own_keys = set(params) | set(buffers)
        missing = own_keys - set(state)
        extra = set(state) - own_keys
        if missing or extra:
            raise KeyError(
                f"state mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
            )
        for key, param in params.items():
            if param.data.shape != state[key].shape:
                raise ValueError(
                    f"shape mismatch for {key}: "
                    f"{param.data.shape} vs {state[key].shape}"
                )
            param.data[...] = state[key]
        for key, (module, name) in buffers.items():
            current = np.asarray(getattr(module, name))
            if current.shape != state[key].shape:
                raise ValueError(
                    f"shape mismatch for buffer {key}: "
                    f"{current.shape} vs {state[key].shape}"
                )
            setattr(module, name, state[key].copy())

    def bind_state(self, state: dict[str, np.ndarray]) -> None:
        """Bind parameters/buffers directly to ``state``'s arrays (zero copy).

        Unlike :meth:`load_state_dict`, the arrays are adopted as-is —
        parameters alias the caller's memory afterwards.  This is the
        mechanism behind shared-memory model attachment
        (:mod:`repro.parallel`): worker processes score against views
        over a segment owned by the publishing process instead of
        private copies.  The arrays may be read-only; such a model is
        inference-only and any attempt to train it raises at write time.
        """
        params: dict[str, Parameter] = {}
        buffers: dict[str, tuple[Module, str]] = {}
        self._collect_slots(params, buffers, prefix="")
        own_keys = set(params) | set(buffers)
        missing = own_keys - set(state)
        extra = set(state) - own_keys
        if missing or extra:
            raise KeyError(
                f"state mismatch: missing={sorted(missing)}, extra={sorted(extra)}"
            )
        for key, param in params.items():
            if param.data.shape != state[key].shape:
                raise ValueError(
                    f"shape mismatch for {key}: "
                    f"{param.data.shape} vs {state[key].shape}"
                )
            param.data = state[key]
        for key, (module, name) in buffers.items():
            current = np.asarray(getattr(module, name))
            if current.shape != state[key].shape:
                raise ValueError(
                    f"shape mismatch for buffer {key}: "
                    f"{current.shape} vs {state[key].shape}"
                )
            setattr(module, name, state[key])

    def _collect_slots(
        self,
        params: dict[str, Parameter],
        buffers: dict[str, tuple["Module", str]],
        prefix: str,
    ) -> None:
        for name, value in vars(self).items():
            key = f"{prefix}{name}"
            if isinstance(value, Parameter):
                params[key] = value
            elif isinstance(value, Module):
                value._collect_slots(params, buffers, prefix=f"{key}.")
        for name in self.buffer_names:
            buffers[f"{prefix}{name}"] = (self, name)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = shape[0], shape[-1]
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


class Embedding(Module):
    """Dense lookup table with scatter-add gradients."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: np.random.Generator,
        init: str = "xavier_uniform",
        sparse_grad: bool = False,
    ) -> None:
        super().__init__()
        if num_embeddings <= 0 or embedding_dim <= 0:
            raise ValueError("num_embeddings and embedding_dim must be positive")
        shape = (num_embeddings, embedding_dim)
        if init == "xavier_uniform":
            data = xavier_uniform(shape, rng)
        elif init == "xavier_normal":
            data = xavier_normal(shape, rng)
        elif init == "normal":
            data = rng.normal(0.0, 0.1, size=shape)
        else:
            raise ValueError(f"unknown init scheme: {init!r}")
        self.weight = Parameter(data, sparse_grad=sparse_grad)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim

    def __call__(self, indices: np.ndarray) -> Tensor:
        return self.weight.gather_rows(indices)

    def normalize_rows_(self) -> None:
        """In-place L2 row normalisation (TransE's per-step constraint)."""
        norms = np.linalg.norm(self.weight.data, axis=1, keepdims=True)
        np.maximum(norms, 1e-12, out=norms)
        self.weight.data /= norms


class Linear(Module):
    """Affine layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.weight = Parameter(xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self.in_features = in_features
        self.out_features = out_features

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv2d(Module):
    """Valid, stride-1 2-D convolution layer (all ConvE needs)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        fan_in = in_channels * kernel_size * kernel_size
        limit = np.sqrt(6.0 / (fan_in + out_channels))
        self.weight = Parameter(
            rng.uniform(
                -limit, limit, size=(out_channels, in_channels, kernel_size, kernel_size)
            )
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self.kernel_size = kernel_size

    def __call__(self, x: Tensor) -> Tensor:
        return ops.conv2d(x, self.weight, self.bias)


class BatchNorm(Module):
    """Batch normalisation over all axes except the channel axis.

    Works for both 2-D inputs ``(B, C)`` (channel axis 1) and 4-D inputs
    ``(B, C, H, W)``, matching what ConvE requires.
    """

    buffer_names = ("running_mean", "running_var")

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self.momentum = momentum
        self.eps = eps
        self.num_features = num_features

    def __call__(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            reduce_axes: tuple[int, ...] = (0,)
            shape = (1, self.num_features)
        elif x.ndim == 4:
            reduce_axes = (0, 2, 3)
            shape = (1, self.num_features, 1, 1)
        else:
            raise ValueError(f"BatchNorm supports 2-D/4-D inputs, got ndim={x.ndim}")

        if self.training:
            mean = x.mean(axis=reduce_axes, keepdims=True)
            centred = x - mean
            var = (centred * centred).mean(axis=reduce_axes, keepdims=True)
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mean.data.reshape(-1)
            self.running_var = (1 - m) * self.running_var + m * var.data.reshape(-1)
            x_hat = centred * ((var + self.eps) ** -0.5)
        else:
            mean_arr = self.running_mean.reshape(shape)
            var_arr = self.running_var.reshape(shape)
            x_hat = (x - mean_arr) * ((var_arr + self.eps) ** -0.5)

        return x_hat * self.gamma.reshape(shape) + self.beta.reshape(shape)


class Dropout(Module):
    """Inverted dropout layer; identity in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def __call__(self, x: Tensor) -> Tensor:
        return ops.dropout(x, self.rate, self._rng, self.training)
