"""RPR014 clean fixture: the typed error is caught before any fallback."""


class BudgetError(Exception):
    pass


def _load(path):
    raise BudgetError(path)


def run(path):
    try:
        return _load(path)
    except BudgetError:
        return None
