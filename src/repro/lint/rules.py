"""Rule protocol, module context, and the rule registry.

A rule is a stateless object with a ``rule_id`` and a :meth:`Rule.check`
method that inspects one parsed module and yields findings.  Rules are
registered at import time with :func:`register_rule`; the engine runs
every registered rule that the active configuration enables.

Two families share the registry.  Local rules (:class:`Rule`) see one
module at a time and run in pass 1; project rules (:class:`ProjectRule`)
override :meth:`ProjectRule.check_project` instead and run in pass 2
over the whole-program :class:`~repro.lint.callgraph.ProjectIndex`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Type

from .findings import Finding

if TYPE_CHECKING:
    from .callgraph import CallGraph, ProjectIndex

__all__ = [
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "register_rule",
    "all_rules",
    "local_rules",
    "project_rules",
    "get_rule",
    "derive_module_name",
    "numpy_aliases",
]

_REGISTRY: dict[str, "Rule"] = {}


def derive_module_name(path: Path) -> str:
    """Dotted module name of ``path``, walking up through package dirs.

    ``src/repro/discovery/discover.py`` → ``repro.discovery.discover``
    as long as each parent directory carries an ``__init__.py``.  Files
    outside any package resolve to their bare stem, which keeps scoped
    rules (RPR002–RPR004) inert on standalone scripts.
    """
    path = Path(path)
    parts = [] if path.name == "__init__.py" else [path.stem]
    package = path.parent
    while (package / "__init__.py").exists():
        parts.append(package.name)
        parent = package.parent
        if parent == package:
            break
        package = parent
    return ".".join(reversed(parts)) if parts else path.stem


def numpy_aliases(tree: ast.Module) -> frozenset[str]:
    """Names the module binds to the numpy package (``numpy``, ``np``, ...)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return frozenset(aliases)


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: str
    module: str
    source: str
    tree: ast.Module

    @classmethod
    def from_source(
        cls, source: str, path: str = "<string>", module: str | None = None
    ) -> "ModuleContext":
        if module is None:
            module = (
                derive_module_name(Path(path)) if path != "<string>" else "<module>"
            )
        return cls(path=path, module=module, source=source, tree=ast.parse(source))

    @classmethod
    def from_path(cls, path: Path, module: str | None = None) -> "ModuleContext":
        return cls.from_source(
            Path(path).read_text(encoding="utf-8"), path=str(path), module=module
        )


class Rule:
    """Base class for all lint rules."""

    rule_id: str = "RPR???"
    name: str = ""
    description: str = ""
    #: Scope of analysis, shown in the generated rule reference.
    scope: str = "per-file"
    #: Why the rule exists — one short paragraph for ``--explain-all``.
    rationale: str = ""
    #: A minimal violating snippet for the generated reference table.
    example: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for inter-procedural (pass 2) rules.

    Project rules never run per-module: :meth:`check` is a no-op and
    :meth:`check_project` receives the complete index plus the resolved
    call graph, returning findings for any module in the project.
    """

    scope = "whole-program"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, index: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id, path=path, line=line, col=col, message=message
        )


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule instance to the registry."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"rule {cls.rule_id} already registered")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def local_rules() -> list[Rule]:
    """Pass-1 rules: everything that is not a :class:`ProjectRule`."""
    return [rule for rule in all_rules() if not isinstance(rule, ProjectRule)]


def project_rules() -> list[ProjectRule]:
    """Pass-2 rules, ordered by id."""
    return [rule for rule in all_rules() if isinstance(rule, ProjectRule)]


def get_rule(rule_id: str) -> Rule:
    if rule_id not in _REGISTRY:
        raise KeyError(f"unknown rule {rule_id!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[rule_id]
