"""The experimental run matrix: dataset × KGE model × sampling strategy.

This module owns:

* per-model default training configurations (the outcome of the
  hyperparameter tuning step of the paper's workflow, Figure 1);
* a trained-model cache (in-process + on-disk) so the many benchmark
  files can share training runs;
* :func:`run_matrix`, which executes discovery for every combination and
  returns flat result rows — the data behind Figures 2, 4 and 6.

Fault tolerance (see :mod:`repro.resilience`):

* disk-cache checkpoints are written atomically with content checksums;
  a corrupt archive is detected at load time, quarantined to a
  ``*.corrupt`` sibling, and the model is retrained;
* training runs inside :func:`get_trained_model` are guarded (epoch
  retry on divergence) and wrapped in the shared retry executor;
* :func:`run_matrix` can journal every cell to a crash-safe JSONL file:
  a restarted campaign skips completed cells (replaying their recorded
  rows bit-identically), re-attempts failed cells up to a budget, and —
  with ``on_error="degrade"`` — emits partial failure rows instead of
  aborting the whole campaign.
"""

from __future__ import annotations

import logging
import os
import zipfile
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..discovery.discover import DiscoveryResult, discover_facts
from ..obs import (
    ReportableMixin,
    flatten_spans,
    get_registry,
    span,
    span_tree_delta,
)
from ..kg.datasets import load_dataset
from ..kg.graph import KnowledgeGraph
from ..kg.stats import GraphStatistics
from ..kge.base import KGEModel, create_model
from ..kge.checkpoint import load_model, save_model
from ..kge.config import ModelConfig, TrainConfig
from ..kge.evaluation import evaluate_ranking
from ..kge.training import train_model
from ..resilience import (
    CheckpointCorruptError,
    Deadline,
    DeadlineExceededError,
    GuardConfig,
    ResilienceError,
    RetryPolicy,
    RunJournal,
    error_fingerprint,
    spawn_seed,
    with_retries,
)
from ..resilience import faults

logger = logging.getLogger(__name__)

__all__ = [
    "PAPER_MODELS",
    "PAPER_DATASETS",
    "PAPER_STRATEGIES",
    "default_model_config",
    "default_train_config",
    "get_trained_model",
    "clear_model_cache",
    "MatrixRow",
    "CampaignState",
    "run_matrix",
]

#: The five embedding models of the paper's experiments (§4).
PAPER_MODELS = ("complex", "conve", "distmult", "rescal", "transe")

#: The four datasets (replicas) of the paper's experiments, Table 1 order.
PAPER_DATASETS = ("fb15k237-like", "wn18rr-like", "yago310-like", "codexl-like")

#: The five strategies compared in the main experiments; CLUSTERING
#: SQUARES is excluded exactly as in the paper (§4.3).
PAPER_STRATEGIES = (
    "uniform_random",
    "entity_frequency",
    "graph_degree",
    "cluster_coefficient",
    "cluster_triangles",
)

_MODEL_DEFAULTS: dict[str, tuple[ModelConfig, TrainConfig]] = {
    "transe": (
        ModelConfig("transe", dim=32, options={"norm": "l1"}),
        TrainConfig(
            job="negative_sampling",
            loss="margin",
            epochs=60,
            batch_size=256,
            lr=0.01,
            num_negatives=8,
            margin=2.0,
        ),
    ),
    "distmult": (
        ModelConfig("distmult", dim=32),
        TrainConfig(
            job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.05,
            label_smoothing=0.1,
        ),
    ),
    "complex": (
        ModelConfig("complex", dim=32),
        TrainConfig(
            job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.05,
            label_smoothing=0.1,
        ),
    ),
    "rescal": (
        ModelConfig("rescal", dim=16),
        TrainConfig(
            job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.02,
            label_smoothing=0.1,
        ),
    ),
    "conve": (
        ModelConfig("conve", dim=32, options={"num_filters": 16}),
        TrainConfig(
            job="kvsall", loss="bce", epochs=25, batch_size=128, lr=0.005,
            label_smoothing=0.1,
        ),
    ),
    "hole": (
        ModelConfig("hole", dim=32),
        TrainConfig(
            job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.05,
            label_smoothing=0.1,
        ),
    ),
}

#: Guard applied to every cache-building training run: retry a diverged
#: epoch with spawned RNG streams, then halt with a typed error that the
#: outer retry executor turns into a full re-train under a derived seed.
_DEFAULT_GUARD = GuardConfig(policy="retry")

#: Whole-training retry budget inside :func:`get_trained_model`.
_DEFAULT_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


def default_model_config(model_name: str) -> ModelConfig:
    """The tuned model configuration used by the experiment matrix."""
    if model_name not in _MODEL_DEFAULTS:
        raise KeyError(f"no default config for model {model_name!r}")
    return _MODEL_DEFAULTS[model_name][0]


def default_train_config(model_name: str) -> TrainConfig:
    """The tuned training configuration used by the experiment matrix."""
    if model_name not in _MODEL_DEFAULTS:
        raise KeyError(f"no default config for model {model_name!r}")
    return _MODEL_DEFAULTS[model_name][1]


_MODEL_CACHE: dict[tuple[str, str], KGEModel] = {}


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_MODEL_CACHE", ".model_cache"))


def clear_model_cache(disk: bool = False) -> None:
    """Drop the in-process model cache (and optionally the disk cache)."""
    _MODEL_CACHE.clear()
    if disk:
        directory = _cache_dir()
        if directory.is_dir():
            for path in directory.glob("*.npz"):
                path.unlink()
            for path in directory.glob("*.npz.corrupt"):
                path.unlink()


def _quarantine(path: Path) -> Path:
    """Move a corrupt checkpoint aside (``*.npz`` → ``*.npz.corrupt``)."""
    target = path.with_name(path.name + ".corrupt")
    target.unlink(missing_ok=True)
    path.rename(target)
    return target


def _compatible(model: KGEModel, config: ModelConfig, graph: KnowledgeGraph) -> bool:
    """Does a cached model match the current tuned config and dataset?"""
    return (
        model.model_name == config.name
        and model.dim == config.dim
        and model.num_entities == graph.num_entities
        and model.num_relations == graph.num_relations
    )


def get_trained_model(
    dataset_name: str,
    model_name: str,
    use_disk_cache: bool = True,
    graph: KnowledgeGraph | None = None,
    guard: GuardConfig | None = None,
    retry_policy: RetryPolicy | None = None,
    deadline: Deadline | None = None,
) -> KGEModel:
    """Return a trained model for a (dataset, model) pair, cached.

    The disk cache (``.model_cache/`` or ``$REPRO_MODEL_CACHE``) lets the
    per-figure benchmark files share one training run per configuration.
    Cache archives carry content checksums: a corrupt one is quarantined
    to a ``*.corrupt`` sibling and the model is retrained.  Training runs
    under a divergence guard and the shared retry executor — a retried
    attempt re-trains under a seed spawned from the base seed, so
    recovery is deterministic without replaying the failing run.
    """
    key = (dataset_name, model_name)
    if key in _MODEL_CACHE:
        return _MODEL_CACHE[key]

    if graph is None:
        graph = load_dataset(dataset_name)
    model_config = default_model_config(model_name)

    cache_path = _cache_dir() / f"{dataset_name}__{model_name}.npz"
    if use_disk_cache and cache_path.is_file():
        try:
            model = load_model(cache_path)
            if not _compatible(model, model_config, graph):
                raise ValueError(
                    f"cached model shape does not match the tuned config "
                    f"for {model_name!r}"
                )
        except CheckpointCorruptError as error:
            quarantined = _quarantine(cache_path)
            logger.warning(
                "corrupt disk cache for %s/%s quarantined to %s; retraining (%s)",
                dataset_name, model_name, quarantined.name, error,
            )
        except (KeyError, ValueError, OSError, zipfile.BadZipFile) as error:
            # Stale cache from an older config or format — retrain and
            # overwrite it below.
            logger.warning(
                "unusable disk cache for %s/%s; retraining (%s)",
                dataset_name, model_name, error,
            )
            cache_path.unlink(missing_ok=True)
        else:
            _MODEL_CACHE[key] = model
            logger.info("loaded %s/%s from disk cache", dataset_name, model_name)
            return model

    train_config = default_train_config(model_name)

    def train_attempt(attempt: int) -> KGEModel:
        # Attempt 0 reproduces the unretried run bit for bit; later
        # attempts re-train under seeds spawned from the base seed.
        attempt_config = (
            train_config
            if attempt == 0
            else train_config.with_(seed=spawn_seed(train_config.seed, attempt))
        )
        fresh = create_model(
            model_config.name,
            num_entities=graph.num_entities,
            num_relations=graph.num_relations,
            dim=model_config.dim,
            seed=model_config.seed,
            **model_config.options,
        )
        logger.info(
            "training %s on %s (attempt %d)", model_name, dataset_name, attempt + 1
        )
        train_model(fresh, graph, attempt_config, guard=guard or _DEFAULT_GUARD)
        return fresh

    model = with_retries(
        train_attempt,
        retry_policy or _DEFAULT_RETRY,
        label=f"get_trained_model:{dataset_name}/{model_name}",
        deadline=deadline,
    )
    model.eval()  # match the cache-load path (batch norm / dropout)
    if use_disk_cache:
        save_model(model, cache_path)
    _MODEL_CACHE[key] = model
    return model


@dataclass
class MatrixRow(ReportableMixin):
    """One cell of the experiment matrix with its discovery metrics.

    ``status`` is ``"ok"`` for a completed cell and ``"failed"`` for a
    cell whose retry budget ran out in a degrading campaign; ``error``
    then carries the failure fingerprint.  ``trace`` holds the cell's
    flattened span-tree summary when observability was enabled (empty
    otherwise; old journal records without the field load unchanged).
    """

    dataset: str
    model: str
    strategy: str
    num_facts: int
    mrr: float
    runtime_seconds: float
    weight_seconds: float
    efficiency_facts_per_hour: float
    test_mrr: float = float("nan")
    status: str = "ok"
    error: str = ""
    trace: dict = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        dataset: str,
        model: str,
        result: DiscoveryResult,
        test_mrr: float = float("nan"),
        trace: dict | None = None,
    ) -> "MatrixRow":
        return cls(
            dataset=dataset,
            model=model,
            strategy=result.strategy,
            num_facts=result.num_facts,
            mrr=result.mrr(),
            runtime_seconds=result.runtime_seconds,
            weight_seconds=result.weight_seconds,
            efficiency_facts_per_hour=result.efficiency_facts_per_hour(),
            test_mrr=test_mrr,
            trace=dict(trace) if trace else {},
        )

    def summary(self) -> dict:
        """Flat overview under canonical ``*_seconds``/``*_count`` keys."""
        out = {
            "dataset": self.dataset,
            "model": self.model,
            "strategy": self.strategy,
            "facts_count": self.num_facts,
            "mrr": self.mrr,
            "runtime_seconds": self.runtime_seconds,
            "weight_seconds": self.weight_seconds,
            "efficiency_facts_per_hour": self.efficiency_facts_per_hour,
            "test_mrr": self.test_mrr,
            "status": self.status,
        }
        for path, node in self.trace.items():
            out[f"span.{path}.wall_seconds"] = node["wall_seconds"]
        return out

    @classmethod
    def failed(cls, dataset: str, model: str, strategy: str, error: str) -> "MatrixRow":
        nan = float("nan")
        return cls(
            dataset=dataset,
            model=model,
            strategy=strategy,
            num_facts=0,
            mrr=nan,
            runtime_seconds=nan,
            weight_seconds=nan,
            efficiency_facts_per_hour=nan,
            status="failed",
            error=error,
        )

    def to_dict(self) -> dict:
        """JSON-safe dict; floats round-trip bit-exactly via ``repr``."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MatrixRow":
        return cls(**data)


@dataclass
class CampaignState:
    """What a run journal says about a campaign so far."""

    completed: dict[str, dict]  # cell key -> recorded MatrixRow dict
    attempts: dict[str, int]  # cell key -> started count (crashes included)
    last_error: dict[str, str]  # cell key -> most recent failure fingerprint

    @classmethod
    def from_journal(cls, journal: RunJournal) -> "CampaignState":
        completed: dict[str, dict] = {}
        attempts: dict[str, int] = {}
        last_error: dict[str, str] = {}
        for record in journal.read().records:
            key = record.get("cell", "")
            event = record.get("event")
            if event == "cell_started":
                attempts[key] = attempts.get(key, 0) + 1
            elif event == "cell_succeeded" and isinstance(record.get("row"), dict):
                completed[key] = record["row"]
            elif event in ("cell_failed", "cell_timeout"):
                last_error[key] = str(record.get("error", ""))
        return cls(completed=completed, attempts=attempts, last_error=last_error)


def _cell_key(dataset: str, model: str, strategy: str) -> str:
    return f"{dataset}/{model}/{strategy}"


def run_matrix(
    datasets: tuple[str, ...] = PAPER_DATASETS,
    models: tuple[str, ...] = PAPER_MODELS,
    strategies: tuple[str, ...] = PAPER_STRATEGIES,
    top_n: int = 500,
    max_candidates: int = 500,
    seed: int = 0,
    evaluate_models: bool = False,
    share_statistics: bool = False,
    journal_path: Path | str | None = None,
    max_cell_attempts: int = 3,
    on_error: str = "raise",
    procs: int = 1,
    cell_deadline: float | None = None,
) -> list[MatrixRow]:
    """Run discovery for every (dataset, model, strategy) combination.

    ``share_statistics=False`` (default) recomputes graph statistics per
    run so each strategy is charged its own weight-computation cost,
    exactly as in the paper's runtime measurements; pass ``True`` to
    amortise it when only fact quality matters.

    With ``journal_path`` set, every cell is journalled to a crash-safe
    JSONL file: restarting the same campaign skips completed cells and
    replays their recorded rows bit-identically, while cells that
    previously crashed or failed are re-attempted until they have been
    started ``max_cell_attempts`` times.  ``on_error`` selects what a
    cell failure does: ``"raise"`` (default) propagates it, aborting the
    campaign (the journal preserves progress); ``"degrade"`` records it
    and emits a partial :class:`MatrixRow` (``status="failed"`` with the
    error fingerprint) once the attempt budget is spent.

    ``procs > 1`` dispatches cells across a spawn-based process pool
    (:mod:`repro.parallel`): models are trained (or loaded from cache)
    in this process, published to shared memory, and scored by workers
    against zero-copy views.  Rows, journal semantics and degradation
    are identical to the serial path — only wall-clock ``*_seconds``
    fields and span traces differ.  One deviation, by design: a
    training failure under ``on_error="degrade"`` consumes a single
    journalled attempt per dependent cell per campaign run (serially
    each cell retrains up to its whole budget within one run); resuming
    the campaign retries them.

    ``cell_deadline`` bounds each cell's wall clock in seconds.  The
    serial path enforces it cooperatively — a fresh
    :class:`~repro.resilience.Deadline` per cell is threaded into the
    training retry loop and checked between discovery relations, and an
    overrun journals a ``cell_timeout`` event charged against the cell's
    attempt budget.  The parallel path enforces it preemptively: the
    scheduler watchdog kills overdue workers (size the budget above the
    ~1-2s pool spawn cost).
    """
    if on_error not in ("raise", "degrade"):
        raise ValueError(f"on_error must be 'raise' or 'degrade', got {on_error!r}")
    if procs < 1:
        raise ValueError(f"procs must be >= 1, got {procs}")
    journal = RunJournal(journal_path) if journal_path is not None else None
    state = (
        CampaignState.from_journal(journal)
        if journal is not None
        else CampaignState(completed={}, attempts={}, last_error={})
    )
    if procs > 1:
        return _run_matrix_parallel(
            datasets,
            models,
            strategies,
            top_n=top_n,
            max_candidates=max_candidates,
            seed=seed,
            evaluate_models=evaluate_models,
            share_statistics=share_statistics,
            journal=journal,
            state=state,
            max_cell_attempts=max_cell_attempts,
            on_error=on_error,
            procs=procs,
            cell_deadline=cell_deadline,
        )

    rows: list[MatrixRow] = []
    registry = get_registry()
    with span("matrix"):
        for dataset_name in datasets:
            graph: KnowledgeGraph | None = None
            shared_stats: GraphStatistics | None = None
            test_mrr_cache: dict[str, float] = {}
            for model_name in models:
                for strategy_name in strategies:
                    key = _cell_key(dataset_name, model_name, strategy_name)
                    if key in state.completed:
                        rows.append(MatrixRow.from_dict(state.completed[key]))
                        continue
                    attempts = state.attempts.get(key, 0)
                    if attempts >= max_cell_attempts:
                        rows.append(
                            MatrixRow.failed(
                                dataset_name,
                                model_name,
                                strategy_name,
                                state.last_error.get(key, "interrupted"),
                            )
                        )
                        continue

                    if graph is None:
                        graph = load_dataset(dataset_name)
                        if share_statistics:
                            shared_stats = GraphStatistics(graph.train)
                    if journal is not None:
                        journal.append("cell_started", cell=key, attempt=attempts + 1)
                        state.attempts[key] = attempts + 1
                    cell_before = (
                        registry.snapshot()["spans"] if registry.enabled else None
                    )
                    deadline = (
                        Deadline.after(cell_deadline)
                        if cell_deadline is not None
                        else None
                    )
                    try:
                        faults.trigger("matrix_cell", key)
                        with span("matrix.cell"):
                            model = get_trained_model(
                                dataset_name, model_name, graph=graph,
                                deadline=deadline,
                            )
                            if evaluate_models and model_name not in test_mrr_cache:
                                test_mrr_cache[model_name] = evaluate_ranking(
                                    model, graph, split="test"
                                ).mrr
                            test_mrr = (
                                test_mrr_cache[model_name]
                                if evaluate_models
                                else float("nan")
                            )
                            stats = shared_stats or GraphStatistics(graph.train)
                            result = discover_facts(
                                model,
                                graph,
                                strategy=strategy_name,
                                top_n=top_n,
                                max_candidates=max_candidates,
                                seed=seed,
                                stats=stats,
                                deadline=deadline,
                            )
                    except Exception as error:
                        registry.counter("matrix.cell_failures_count").inc()
                        fingerprint = error_fingerprint(error)
                        if journal is not None:
                            journal.append(
                                "cell_timeout"
                                if isinstance(error, DeadlineExceededError)
                                else "cell_failed",
                                cell=key,
                                attempt=state.attempts.get(key, attempts + 1),
                                error=fingerprint,
                            )
                            state.last_error[key] = fingerprint
                        if on_error == "raise":
                            raise
                        logger.warning("cell %s failed: %s", key, fingerprint)
                        if state.attempts.get(key, attempts + 1) >= max_cell_attempts:
                            rows.append(
                                MatrixRow.failed(
                                    dataset_name,
                                    model_name,
                                    strategy_name,
                                    fingerprint,
                                )
                            )
                        else:
                            rows.append(
                                _rerun_cell(
                                    journal,
                                    state,
                                    dataset_name,
                                    model_name,
                                    strategy_name,
                                    graph,
                                    shared_stats,
                                    top_n,
                                    max_candidates,
                                    seed,
                                    max_cell_attempts,
                                )
                            )
                        continue

                    trace = (
                        flatten_spans(
                            span_tree_delta(
                                cell_before, registry.snapshot()["spans"]
                            )
                        )
                        if cell_before is not None
                        else {}
                    )
                    registry.counter("matrix.cells_count").inc()
                    row = MatrixRow.from_result(
                        dataset_name, model_name, result, test_mrr, trace=trace
                    )
                    if journal is not None:
                        journal.append("cell_succeeded", cell=key, row=row.to_dict())
                        state.completed[key] = row.to_dict()
                    rows.append(row)
    return rows


def _run_matrix_parallel(
    datasets: tuple[str, ...],
    models: tuple[str, ...],
    strategies: tuple[str, ...],
    top_n: int,
    max_candidates: int,
    seed: int,
    evaluate_models: bool,
    share_statistics: bool,
    journal: RunJournal | None,
    state: CampaignState,
    max_cell_attempts: int,
    on_error: str,
    procs: int,
    cell_deadline: float | None = None,
) -> list[MatrixRow]:
    """Dispatch the matrix across the process fabric (``procs > 1``).

    The parent keeps everything stateful: it replays completed cells
    from the journal, trains (or cache-loads) every needed model,
    publishes each to shared memory, and evaluates test MRR.  Workers
    only load graphs, attach models and run discovery.  Returned rows
    carry the worker-side span trace when observability is enabled; the
    journalled ``cell_succeeded`` records hold the row as the worker
    produced it (without the trace).
    """
    from ..parallel import Cell, ParallelScheduler, SharedEmbeddingStore
    from ..parallel.workers import MatrixContext, matrix_cell_worker

    registry = get_registry()
    rows_by_key: dict[str, MatrixRow] = {}
    order: list[str] = []
    runnable: list[tuple[str, str, str]] = []
    with span("matrix"):
        for dataset_name in datasets:
            for model_name in models:
                for strategy_name in strategies:
                    key = _cell_key(dataset_name, model_name, strategy_name)
                    order.append(key)
                    if key in state.completed:
                        rows_by_key[key] = MatrixRow.from_dict(state.completed[key])
                    elif state.attempts.get(key, 0) >= max_cell_attempts:
                        rows_by_key[key] = MatrixRow.failed(
                            dataset_name,
                            model_name,
                            strategy_name,
                            state.last_error.get(key, "interrupted"),
                        )
                    else:
                        runnable.append((dataset_name, model_name, strategy_name))

        pairs: list[tuple[str, str]] = []
        for dataset_name, model_name, _ in runnable:
            if (dataset_name, model_name) not in pairs:
                pairs.append((dataset_name, model_name))

        stores: dict[tuple[str, str], SharedEmbeddingStore] = {}
        handles: dict[tuple[str, str], object] = {}
        test_mrrs: dict[tuple[str, str], float] = {}
        failed_pairs: dict[tuple[str, str], str] = {}
        graphs: dict[str, KnowledgeGraph] = {}
        outcomes = []
        try:
            for dataset_name, model_name in pairs:
                if dataset_name not in graphs:
                    graphs[dataset_name] = load_dataset(dataset_name)
                graph = graphs[dataset_name]
                try:
                    model = get_trained_model(dataset_name, model_name, graph=graph)
                    store = SharedEmbeddingStore.publish(model)
                    stores[(dataset_name, model_name)] = store
                    handles[(dataset_name, model_name)] = store.handle
                    if evaluate_models:
                        test_mrrs[(dataset_name, model_name)] = evaluate_ranking(
                            model, graph, split="test"
                        ).mrr
                except Exception as error:
                    if on_error == "raise":
                        raise
                    fingerprint = error_fingerprint(error)
                    failed_pairs[(dataset_name, model_name)] = fingerprint
                    logger.warning(
                        "training %s/%s failed, degrading its cells: %s",
                        dataset_name, model_name, fingerprint,
                    )

            cells: list[Cell] = []
            for dataset_name, model_name, strategy_name in runnable:
                key = _cell_key(dataset_name, model_name, strategy_name)
                fingerprint = failed_pairs.get((dataset_name, model_name))
                if fingerprint is not None:
                    attempt = state.attempts.get(key, 0) + 1
                    if journal is not None:
                        journal.append("cell_started", cell=key, attempt=attempt)
                        journal.append(
                            "cell_failed", cell=key, attempt=attempt, error=fingerprint
                        )
                    state.attempts[key] = attempt
                    registry.counter("matrix.cell_failures_count").inc()
                    rows_by_key[key] = MatrixRow.failed(
                        dataset_name, model_name, strategy_name, fingerprint
                    )
                else:
                    cells.append(
                        Cell(
                            key=key,
                            payload=(
                                dataset_name,
                                model_name,
                                strategy_name,
                                test_mrrs.get(
                                    (dataset_name, model_name), float("nan")
                                ),
                            ),
                        )
                    )

            if cells:
                context = MatrixContext(
                    handles=handles,
                    top_n=top_n,
                    max_candidates=max_candidates,
                    seed=seed,
                    share_statistics=share_statistics,
                    fault_plan=faults.active_plan(),
                )
                scheduler = ParallelScheduler(
                    matrix_cell_worker,
                    procs,
                    context=context,
                    seed=seed,
                    journal=journal,
                    max_attempts=max_cell_attempts,
                    on_error=on_error,
                    cell_deadline=cell_deadline,
                )
                outcomes = scheduler.run(cells, attempts=dict(state.attempts))
        finally:
            for store in stores.values():
                store.close(unlink=True)

        for outcome in outcomes:
            if outcome.status == "ok":
                registry.counter("matrix.cells_count").inc()
                row = MatrixRow.from_dict(outcome.value)
                row.trace = dict(outcome.trace)
            else:
                registry.counter("matrix.cell_failures_count").inc()
                dataset_name, model_name, strategy_name = outcome.key.split("/")
                row = MatrixRow.failed(
                    dataset_name, model_name, strategy_name, outcome.error
                )
            rows_by_key[outcome.key] = row
    return [rows_by_key[key] for key in order]


def _record_cell_failure(
    journal: RunJournal | None,
    state: CampaignState,
    key: str,
    attempt: int,
    error: Exception,
    typed: bool = False,
) -> None:
    """Journal and log one failed cell attempt."""
    fingerprint = error_fingerprint(error)
    state.last_error[key] = fingerprint
    if journal is not None:
        journal.append("cell_failed", cell=key, attempt=attempt, error=fingerprint)
    logger.warning(
        "cell %s failed on attempt %d%s: %s",
        key,
        attempt,
        " (typed resilience error)" if typed else "",
        fingerprint,
    )


def _rerun_cell(
    journal: RunJournal | None,
    state: CampaignState,
    dataset_name: str,
    model_name: str,
    strategy_name: str,
    graph: KnowledgeGraph,
    shared_stats: GraphStatistics | None,
    top_n: int,
    max_candidates: int,
    seed: int,
    max_cell_attempts: int,
) -> MatrixRow:
    """Degrading-mode in-process re-attempts of one failed cell."""
    key = _cell_key(dataset_name, model_name, strategy_name)
    while state.attempts.get(key, 0) < max_cell_attempts:
        attempt = state.attempts.get(key, 0) + 1
        if journal is not None:
            journal.append("cell_started", cell=key, attempt=attempt)
        state.attempts[key] = attempt
        try:
            faults.trigger("matrix_cell", key)
            model = get_trained_model(dataset_name, model_name, graph=graph)
            stats = shared_stats or GraphStatistics(graph.train)
            result = discover_facts(
                model,
                graph,
                strategy=strategy_name,
                top_n=top_n,
                max_candidates=max_candidates,
                seed=seed,
                stats=stats,
            )
        except ResilienceError as error:
            # Typed failures (fault injection, corrupt checkpoints,
            # exhausted retry budgets) keep their identity in the journal
            # and logs; a fresh attempt may still retrain from scratch.
            _record_cell_failure(
                journal, state, key, attempt, error, typed=True
            )
            continue
        except Exception as error:
            _record_cell_failure(journal, state, key, attempt, error)
            continue
        row = MatrixRow.from_result(dataset_name, model_name, result)
        if journal is not None:
            journal.append("cell_succeeded", cell=key, row=row.to_dict())
            state.completed[key] = row.to_dict()
        return row
    return MatrixRow.failed(
        dataset_name, model_name, strategy_name,
        state.last_error.get(key, "interrupted"),
    )
