"""Baseline — exhaustive (CHAI-style) generation vs Algorithm 1 sampling.

The paper's motivation (§1, §5.1): enumerating the complement graph is
infeasible (533 × 10⁹ candidates for YAGO3-10) because the candidate
count grows as |E|²·|R| while sampling is bounded by ``max_candidates``
per relation.  On the small replicas the exhaustive sweep is still
runnable, which lets us demonstrate both halves of the argument:

* the workload ratio — exhaustive evaluates ~180× the candidates and its
  per-relation cost grows quadratically with the entity count, while
  Algorithm 1 is flat;
* the quality effect — popularity-based sampling concentrates on good
  candidates and attains a *higher* MRR than the indiscriminate sweep.
"""

from __future__ import annotations

from common import MAX_CANDIDATES_DEFAULT, TOP_N_DEFAULT, save_and_print

from repro.discovery import RuleFilter, discover_facts, exhaustive_discover_facts
from repro.experiments import format_table, get_trained_model
from repro.kg import GraphStatistics, KGProfile, generate_kg, load_dataset
from repro.kge import ModelConfig, TrainConfig, fit

_RELATIONS = [0, 1, 2]  # bound the sweep: three relations are plenty


def test_exhaustive_vs_sampled(benchmark):
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "distmult", graph=graph)
    stats = GraphStatistics(graph.train)

    sampled = benchmark.pedantic(
        lambda: discover_facts(
            model, graph, strategy="entity_frequency", top_n=TOP_N_DEFAULT,
            max_candidates=MAX_CANDIDATES_DEFAULT, relations=_RELATIONS,
            seed=0, stats=stats,
        ),
        rounds=1,
        iterations=1,
    )
    exhaustive = exhaustive_discover_facts(
        model, graph, top_n=TOP_N_DEFAULT, relations=_RELATIONS,
    )
    pruned = exhaustive_discover_facts(
        model, graph, top_n=TOP_N_DEFAULT, relations=_RELATIONS,
        rule_filter=RuleFilter(graph.train),
    )

    def row(label, result):
        return {
            "approach": label,
            "candidates": result.candidates_generated,
            "facts": result.num_facts,
            "mrr": round(result.mrr(), 4),
            "runtime_s": round(result.runtime_seconds, 3),
            "facts_per_hour": round(result.efficiency_facts_per_hour()),
        }

    rows = [
        row("Algorithm 1 (EF sampling)", sampled),
        row("exhaustive (CHAI-style)", exhaustive),
        row("exhaustive + rule filter", pruned),
    ]

    # Scaling sweep: candidates evaluated per relation as the entity
    # count grows — quadratic for exhaustive, flat for Algorithm 1.
    scaling_rows = []
    ratios = []
    for size in (100, 200, 400):
        scaled = generate_kg(
            KGProfile(
                name=f"scale-{size}", num_entities=size, num_relations=4,
                num_triples=size * 8, num_types=5, seed=77,
            )
        )
        small_model = fit(
            scaled,
            ModelConfig("distmult", dim=16, seed=0),
            TrainConfig(job="kvsall", loss="bce", epochs=10, batch_size=128, lr=0.05),
        ).model
        ex = exhaustive_discover_facts(
            small_model, scaled, top_n=TOP_N_DEFAULT, relations=[0]
        )
        sa = discover_facts(
            small_model, scaled, strategy="entity_frequency",
            top_n=TOP_N_DEFAULT, max_candidates=MAX_CANDIDATES_DEFAULT,
            relations=[0], seed=0,
        )
        ratio = ex.candidates_generated / max(sa.candidates_generated, 1)
        ratios.append(ratio)
        scaling_rows.append(
            {
                "entities": size,
                "exhaustive_candidates": ex.candidates_generated,
                "sampled_candidates": sa.candidates_generated,
                "workload_ratio": round(ratio, 1),
            }
        )

    save_and_print(
        "exhaustive_baseline",
        format_table(
            rows,
            title="Baseline — sampling vs exhaustive generation "
            f"(fb15k237-like, DistMult, {len(_RELATIONS)} relations)",
        )
        + "\n\n"
        + format_table(
            scaling_rows,
            title="Baseline — candidate workload vs entity count (one relation)",
        )
        + f"\n\nfull complement of this replica: {graph.complement_size():,} triples"
        + "\npaper-scale complement (YAGO3-10): 533,000,000,000 triples",
    )

    # Sampling evaluates a small fraction of the exhaustive candidates.
    assert sampled.candidates_generated < 0.05 * exhaustive.candidates_generated
    # Focused (popularity) sampling yields higher-quality facts than the
    # indiscriminate sweep.
    assert sampled.mrr() > exhaustive.mrr()
    # Rule pruning shrinks the exhaustive candidate set.
    assert pruned.candidates_generated < exhaustive.candidates_generated
    # The exhaustive/sampled workload ratio grows with the entity count —
    # the |E|² blow-up that makes the paper-scale sweep infeasible.
    assert ratios[-1] > ratios[0]
