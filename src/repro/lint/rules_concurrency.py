"""RPR011 — concurrency safety for shared mutable state.

The ROADMAP moves toward multiprocess campaigns and a long-lived query
server, so any class that already dispatches work to threads (or that
owns a lock, declaring itself shared) must treat its instance state as a
concurrency surface.  The rule has four triggers:

- a class that **owns a lock** must hold one of its locks around every
  instance-state mutation outside ``__init__``;
- a class whose methods **spawn or submit to executors** gets the same
  obligation — today's single-thread accounting is tomorrow's race once
  the instance is shared;
- a module that owns a **module-level lock** must hold it around global
  mutations;
- any function **reachable from submitted thread workers** may not
  mutate shared state unlocked, whoever owns it.

``threading.local`` attributes are exempt, as are the lock attributes
themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .findings import Finding
from .index import FunctionInfo, Mutation
from .rules import ProjectRule, register_rule

if TYPE_CHECKING:
    from .callgraph import CallGraph, ProjectIndex

__all__ = ["ConcurrencySafetyRule"]


def _held(
    mutation: Mutation,
    lock_attrs: tuple[str, ...],
    module_locks: tuple[str, ...],
) -> bool:
    for context in mutation.withs:
        if len(context) == 2 and context[0] == "self" and context[1] in lock_attrs:
            return True
        if len(context) == 1 and context[0] in module_locks:
            return True
    return False


@register_rule
class ConcurrencySafetyRule(ProjectRule):
    rule_id = "RPR011"
    name = "concurrency-safety"
    description = (
        "shared state mutated without holding the owning lock in "
        "lock-owning classes, executor-spawning classes, or thread workers"
    )
    rationale = (
        "A class that spawns worker threads or owns a lock has declared "
        "its instances shared; every unlocked mutation of its state is a "
        "latent race that only shows up under the concurrent serving "
        "loads the ROADMAP is heading for.  The call graph lets the rule "
        "follow submitted worker functions into their callees, where "
        "per-file analysis goes blind."
    )
    example = (
        "class Engine:\n"
        "    def run(self, jobs):\n"
        "        with ThreadPoolExecutor() as pool:\n"
        "            for job in jobs:\n"
        "                pool.submit(self._work, job)\n"
        "    def _work(self, job):\n"
        "        self.done += 1   # RPR011: unlocked shared mutation\n"
    )

    def check_project(
        self, index: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        seen: set[tuple[str, int, int]] = set()

        def emit(path: str, mutation: Mutation, message: str):
            site = (path, mutation.lineno, mutation.col)
            if site in seen:
                return None
            seen.add(site)
            return self.project_finding(
                path, mutation.lineno, mutation.col, message
            )

        def class_exempt(cls, mutation: Mutation) -> bool:
            attr = mutation.path[0]
            return attr in cls.threadlocal_attrs or attr in cls.lock_attrs

        # Triggers 1 + 2: lock-owning and executor-spawning classes.
        for module in sorted(index.modules):
            info = index.modules[module]
            module_locks = info.module_locks
            for cls_name in sorted(info.classes):
                cls = info.classes[cls_name]
                members = [
                    fn for fn in info.functions.values() if fn.cls == cls_name
                ]
                owns_lock = bool(cls.lock_attrs)
                spawns = any(fn.spawns_pool or fn.submitted for fn in members)
                if not (owns_lock or spawns):
                    continue
                reason = (
                    f"class '{cls_name}' owns a lock"
                    if owns_lock
                    else f"class '{cls_name}' dispatches work to threads"
                )
                for fn in members:
                    for mutation in fn.mutations:
                        if mutation.scope != "self":
                            continue
                        if class_exempt(cls, mutation):
                            continue
                        if _held(mutation, cls.lock_attrs, module_locks):
                            continue
                        state = "self." + ".".join(mutation.path)
                        finding = emit(
                            info.path,
                            mutation,
                            f"{reason} but '{fn.qual}' mutates {state} "
                            "without holding it",
                        )
                        if finding:
                            yield finding

            # Trigger 3: module-level globals guarded by a module lock.
            if module_locks:
                for fn in info.functions.values():
                    for mutation in fn.mutations:
                        if mutation.scope != "global":
                            continue
                        if mutation.path[0] in module_locks:
                            continue
                        if _held(mutation, (), module_locks):
                            continue
                        finding = emit(
                            info.path,
                            mutation,
                            f"module owns lock '{module_locks[0]}' but "
                            f"'{fn.qual}' mutates global "
                            f"'{mutation.path[0]}' without holding it",
                        )
                        if finding:
                            yield finding

        # Trigger 4: functions reachable from submitted thread workers.
        worker_entries: set[str] = set()
        for key, (module, fn) in graph.nodes.items():
            for parts in fn.submitted:
                worker_entries.update(graph.resolve_call(module, fn, parts))
        parents = graph.reachable(sorted(worker_entries))
        for key in sorted(parents):
            module, fn = graph.nodes[key]
            info = index.modules[module]
            for mutation in fn.mutations:
                cls = info.classes.get(fn.cls) if fn.cls else None
                if mutation.scope == "self":
                    if cls is None or class_exempt(cls, mutation):
                        continue
                    if _held(mutation, cls.lock_attrs, info.module_locks):
                        continue
                    state = "self." + ".".join(mutation.path)
                else:
                    if mutation.path[0] in info.module_locks:
                        continue
                    if _held(mutation, (), info.module_locks):
                        continue
                    state = "global '" + mutation.path[0] + "'"
                witness = " -> ".join(graph.witness_path(parents, key))
                finding = emit(
                    info.path,
                    mutation,
                    f"'{fn.qual}' runs on worker threads (via {witness}) "
                    f"and mutates {state} without a lock",
                )
                if finding:
                    yield finding
