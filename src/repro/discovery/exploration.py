"""Exploration-aware sampling strategies — the paper's first future
direction (§6).

The six strategies the paper evaluates all *exploit* dense, popular
regions of the KG, leaving long-tail entities — where missing facts are
most needed — undiscovered.  This module adds the exploration side of the
exploration/exploitation dilemma the paper points to:

* :class:`TemperedFrequency` — frequency weights raised to a temperature
  ``alpha``: ``alpha = 1`` is ENTITY FREQUENCY, ``alpha = 0`` is uniform
  over active entities, ``alpha < 0`` inverts the popularity bias and
  targets the long tail.
* :class:`InverseFrequency` — the registered ``alpha = -1`` instance.
* :class:`MixtureStrategy` — a convex mixture of arbitrary strategies
  (e.g. 80 % ENTITY FREQUENCY + 20 % UNIFORM RANDOM: ε-greedy
  exploration).
* :class:`PageRankStrategy` — damping-factor random-walk centrality as a
  popularity metric, computed from scratch by power iteration; a natural
  companion to GRAPH DEGREE and CLUSTERING TRIANGLES.
"""

from __future__ import annotations

import numpy as np

from ..kg.stats import OBJECT, SUBJECT, GraphStatistics
from .strategies import SamplingStrategy, _SideAgnostic, _normalise, _register

__all__ = [
    "TemperedFrequency",
    "InverseFrequency",
    "MixtureStrategy",
    "PageRankStrategy",
    "pagerank",
]


def pagerank(
    adjacency,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iterations: int = 200,
) -> np.ndarray:
    """PageRank on an undirected adjacency by power iteration.

    Isolated nodes receive the teleport mass ``(1 - damping) / N`` plus
    their share of the dangling redistribution, like everyone else.
    """
    if not 0.0 <= damping < 1.0:
        raise ValueError(f"damping must be in [0, 1), got {damping}")
    n = adjacency.shape[0]
    if n == 0:
        return np.zeros(0)
    degree = np.asarray(adjacency.sum(axis=1)).ravel().astype(np.float64)
    inv_degree = np.zeros(n)
    nonzero = degree > 0
    inv_degree[nonzero] = 1.0 / degree[nonzero]
    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for _ in range(max_iterations):
        outflow = rank * inv_degree
        spread = adjacency.T @ outflow
        dangling = rank[~nonzero].sum() / n
        new_rank = teleport + damping * (spread + dangling)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank / rank.sum()


class TemperedFrequency(SamplingStrategy):
    """Side-aware frequency sampling with a temperature exponent.

    ``weight(x, side) ∝ count(x, side)^alpha`` over entities active on
    that side.  ``alpha`` interpolates between exploitation
    (``alpha ≥ 1``) and long-tail exploration (``alpha < 0``).
    """

    name = "tempered_frequency"
    side_aware = True

    def __init__(self, alpha: float = 0.5) -> None:
        super().__init__()
        self.alpha = float(alpha)

    def _compute(self, stats: GraphStatistics):
        out = {}
        for side, freq in (
            (SUBJECT, stats.subject_frequency),
            (OBJECT, stats.object_frequency),
        ):
            pool = np.flatnonzero(freq > 0)
            weights = freq[pool].astype(np.float64) ** self.alpha
            out[side] = _normalise(pool, weights)
        return out

    def __repr__(self) -> str:
        return f"TemperedFrequency(alpha={self.alpha})"


@_register("tempered_frequency")
class _DefaultTemperedFrequency(TemperedFrequency):
    """Registry entry with the default temperature (α = 0.5)."""


@_register("inverse_frequency")
class InverseFrequency(TemperedFrequency):
    """Long-tail sampler: weight ∝ 1 / count (TemperedFrequency α = −1)."""

    name = "inverse_frequency"

    def __init__(self) -> None:
        super().__init__(alpha=-1.0)


class MixtureStrategy(SamplingStrategy):
    """Convex mixture of sampling strategies.

    The per-entity probability is the weighted sum of the component
    distributions — e.g. ``MixtureStrategy([EntityFrequency(),
    UniformRandom()], [0.8, 0.2])`` is an ε-greedy explorer with ε = 0.2.
    """

    name = "mixture"

    def __init__(
        self, strategies: list[SamplingStrategy], weights: list[float]
    ) -> None:
        super().__init__()
        if len(strategies) != len(weights) or not strategies:
            raise ValueError("need equally many strategies and weights (≥ 1)")
        weights_arr = np.asarray(weights, dtype=np.float64)
        if (weights_arr < 0).any() or weights_arr.sum() <= 0:
            raise ValueError("mixture weights must be non-negative, not all zero")
        self.strategies = list(strategies)
        self.weights = weights_arr / weights_arr.sum()
        self.name = "mixture(" + "+".join(s.name for s in strategies) + ")"

    def _compute(self, stats: GraphStatistics):
        n = stats.triples.num_entities
        out = {}
        for side in (SUBJECT, OBJECT):
            mixed = np.zeros(n)
            for strategy, weight in zip(self.strategies, self.weights):
                strategy.prepare(stats)
                pool, probs = strategy.distribution(side)
                mixed[pool] += weight * probs
            pool = np.flatnonzero(mixed > 0)
            out[side] = _normalise(pool, mixed[pool])
        return out


@_register("pagerank")
class PageRankStrategy(_SideAgnostic):
    """Sampling probability ∝ PageRank of the node (power iteration)."""

    def __init__(self, damping: float = 0.85) -> None:
        super().__init__()
        self.damping = damping

    def _node_weights(self, stats: GraphStatistics) -> np.ndarray:
        return pagerank(stats.adjacency, damping=self.damping)
