"""Parallel fabric scaling — serial vs spawn-pool widths 1, 2 and 4.

Each entry point that grew a ``procs`` knob is timed serially and
through the :mod:`repro.parallel` fabric at increasing pool widths:

* **discovery** — ``discover_facts`` over a 3k-entity synthetic graph
  (relations are the unit of dispatch);
* **grid** — ``hyperparameter_grid`` over four (top_n, max_candidates)
  points (points are the unit);
* **matrix** — ``run_matrix`` on wn18rr-like × distmult × three
  strategies (cells are the unit; the model trains once into the disk
  cache before timing so every variant measures pure discovery).

Every parallel run is asserted **bit-identical** to serial on the
deterministic fields — that gate runs unconditionally.  Speed *gates*,
by contrast, are conditioned on ``host_cpus`` (recorded in the JSON):
a spawn pool cannot beat serial on a single core — each worker re-pays
interpreter start-up and module imports while all of them time-share
one CPU — so asserting a speedup there would institutionalise a flaky
lie.  On multi-core hosts the discovery workload must reach modest
floors (≥1.05× at 2 procs, ≥1.5× at 4); single-core hosts record the
measured slowdown honestly and enforce only correctness.

The ``procs=1`` rows are serial-vs-serial: every entry point routes
through the fabric only at ``procs > 1``, so that row measures the
serial path's run-to-run variance — the noise floor against which the
other speedup figures should be read.

Results: ``benchmarks/results/BENCH_parallel.json`` plus the rendered
table in ``benchmarks/results/parallel_scaling.txt``.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from common import RESULTS_DIR, save_and_print

from repro.discovery import discover_facts
from repro.experiments import format_table, get_trained_model, run_matrix
from repro.experiments.gridsearch import hyperparameter_grid
from repro.kg import KGProfile, generate_kg, load_dataset
from repro.kge.base import create_model

HOST_CPUS = os.cpu_count() or 1
PROCS_LADDER = (1, 2, 4)

DISCOVERY_PROFILE = KGProfile(
    name="bench-parallel",
    num_entities=12_000,
    num_relations=48,
    num_triples=60_000,
    num_types=8,
    seed=71,
)

DISCOVERY_KWARGS = dict(
    strategy="entity_frequency", top_n=300, max_candidates=2_500, seed=0
)
GRID_KWARGS = dict(
    strategy="uniform_random",
    top_n_values=(50, 100),
    max_candidates_values=(900, 2_500),
    seed=0,
)
MATRIX_KWARGS = dict(
    datasets=("wn18rr-like",),
    models=("distmult",),
    strategies=(
        "uniform_random",
        "entity_frequency",
        "graph_degree",
        "cluster_coefficient",
        "pagerank",
    ),
    top_n=50,
    max_candidates=500,
    seed=0,
)


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def _discovery_fingerprint(result):
    return (
        result.facts.tobytes(),
        result.ranks.tobytes(),
        result.candidates_generated,
        tuple(sorted(result.per_relation.items())),
    )


def _grid_fingerprint(points):
    return tuple(
        (p.strategy, p.top_n, p.max_candidates, p.num_facts, p.mrr)
        for p in points
    )


def _matrix_fingerprint(rows):
    return tuple(
        (r.dataset, r.model, r.strategy, r.status, r.num_facts, r.mrr)
        for r in rows
    )


def _scale(label: str, run, fingerprint) -> tuple[list[dict], float]:
    """Time ``run(procs)`` at 1 (serial) then every ladder width."""
    run(1)  # warm-up: BLAS initialisation, dataset/statistics caches
    serial_value, serial_s = _timed(lambda: run(1))
    reference = fingerprint(serial_value)
    rows = []
    for procs in PROCS_LADDER:
        value, seconds = _timed(lambda: run(procs))
        assert fingerprint(value) == reference, (label, procs)
        rows.append(
            {
                "workload": label,
                "procs": procs,
                "seconds": round(seconds, 3),
                "speedup_vs_serial": round(serial_s / seconds, 2),
                "identical_to_serial": True,
            }
        )
    return rows, serial_s


def test_parallel_scaling():
    graph = generate_kg(DISCOVERY_PROFILE)
    model = create_model(
        "distmult",
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=32,
        seed=1,
    )
    model.eval()

    matrix_graph = load_dataset("wn18rr-like")
    get_trained_model("wn18rr-like", "distmult", graph=matrix_graph)  # warm cache

    workloads = {
        "discovery": (
            lambda procs: discover_facts(
                model, graph, procs=procs, **DISCOVERY_KWARGS
            ),
            _discovery_fingerprint,
        ),
        "grid": (
            lambda procs: hyperparameter_grid(
                model, graph, procs=procs, **GRID_KWARGS
            ),
            _grid_fingerprint,
        ),
        "matrix": (
            lambda procs: run_matrix(procs=procs, **MATRIX_KWARGS),
            _matrix_fingerprint,
        ),
    }

    all_rows: list[dict] = []
    serial_seconds: dict[str, float] = {}
    for label, (run, fingerprint) in workloads.items():
        rows, serial_s = _scale(label, run, fingerprint)
        all_rows.extend(rows)
        serial_seconds[label] = round(serial_s, 3)

    # Speed gates only where the hardware can physically deliver them.
    speedups = {
        (row["workload"], row["procs"]): row["speedup_vs_serial"]
        for row in all_rows
    }
    gates_enforced = []
    if HOST_CPUS >= 2:
        gates_enforced.append("discovery@2procs>=1.05")
        assert speedups[("discovery", 2)] >= 1.05, all_rows
    if HOST_CPUS >= 4:
        gates_enforced.append("discovery@4procs>=1.5")
        assert speedups[("discovery", 4)] >= 1.5, all_rows

    payload = {
        "host_cpus": HOST_CPUS,
        "procs_ladder": list(PROCS_LADDER),
        "procs_1_note": (
            "procs=1 routes through the serial path (the fabric engages "
            "only at procs>1); its speedup is the run-to-run noise floor"
        ),
        "gates_enforced": gates_enforced,
        "serial_seconds": serial_seconds,
        "scaling": all_rows,
        "discovery_graph": {
            "num_entities": DISCOVERY_PROFILE.num_entities,
            "num_relations": DISCOVERY_PROFILE.num_relations,
            "num_triples": DISCOVERY_PROFILE.num_triples,
        },
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    save_and_print(
        "parallel_scaling",
        format_table(
            all_rows,
            title=(
                f"parallel fabric vs serial on {HOST_CPUS} host cpu(s); "
                f"gates enforced: {', '.join(gates_enforced) or 'none (single core)'}"
            ),
        ),
    )
