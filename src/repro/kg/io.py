"""TSV triple I/O in the layout used by LibKGE-style benchmark datasets.

A dataset directory contains ``train.txt``, ``valid.txt`` and ``test.txt``,
each a tab-separated file of ``subject<TAB>relation<TAB>object`` labels.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .graph import KnowledgeGraph
from .triples import TripleSet
from .vocabulary import Vocabulary

__all__ = [
    "read_triples_tsv",
    "write_triples_tsv",
    "load_dataset_dir",
    "save_dataset_dir",
]

_SPLIT_FILES = ("train.txt", "valid.txt", "test.txt")


def read_triples_tsv(path: Path | str) -> list[tuple[str, str, str]]:
    """Read label triples from a tab-separated file.

    Blank lines are skipped; malformed lines raise ``ValueError`` with the
    offending line number.
    """
    triples: list[tuple[str, str, str]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{lineno}: expected 3 tab-separated fields, "
                    f"got {len(parts)}"
                )
            triples.append((parts[0], parts[1], parts[2]))
    return triples


def write_triples_tsv(
    path: Path | str, triples: list[tuple[str, str, str]]
) -> None:
    """Write label triples to a tab-separated file."""
    with open(path, "w", encoding="utf-8") as handle:
        for s, r, o in triples:
            handle.write(f"{s}\t{r}\t{o}\n")


def load_dataset_dir(directory: Path | str, name: str | None = None) -> KnowledgeGraph:
    """Load a dataset directory with train/valid/test TSV splits.

    Vocabularies are built from the union of all splits so that validation
    and test triples never contain unseen ids.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"dataset directory not found: {directory}")
    splits = [read_triples_tsv(directory / fname) for fname in _SPLIT_FILES]

    entities = Vocabulary()
    relations = Vocabulary()
    for split in splits:
        for s, r, o in split:
            entities.add(s)
            relations.add(r)
            entities.add(o)

    def encode(split: list[tuple[str, str, str]]) -> np.ndarray:
        if not split:
            return np.zeros((0, 3), dtype=np.int64)
        return np.asarray(
            [
                (entities.id_of(s), relations.id_of(r), entities.id_of(o))
                for s, r, o in split
            ],
            dtype=np.int64,
        )

    n, k = len(entities), len(relations)
    train, valid, test = (TripleSet(encode(split), n, k) for split in splits)
    return KnowledgeGraph(
        name=name or directory.name,
        entities=entities,
        relations=relations,
        train=train,
        valid=valid,
        test=test,
    )


def save_dataset_dir(graph: KnowledgeGraph, directory: Path | str) -> None:
    """Write a knowledge graph to a dataset directory (three TSV splits)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for fname, split in zip(_SPLIT_FILES, (graph.train, graph.valid, graph.test)):
        labelled = [graph.label_triple(t) for t in split]
        write_triples_tsv(directory / fname, labelled)
