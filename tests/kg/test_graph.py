"""Tests for the KnowledgeGraph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import KnowledgeGraph, TripleSet, Vocabulary


def build(train, valid=(), test=(), n=6, k=2) -> KnowledgeGraph:
    return KnowledgeGraph.from_arrays(
        name="g",
        num_entities=n,
        num_relations=k,
        train=np.asarray(train, dtype=np.int64).reshape(-1, 3),
        valid=np.asarray(list(valid), dtype=np.int64).reshape(-1, 3),
        test=np.asarray(list(test), dtype=np.int64).reshape(-1, 3),
    )


class TestConstruction:
    def test_sizes(self):
        g = build([[0, 0, 1], [1, 1, 2]], valid=[(2, 0, 3)], test=[(3, 1, 4)])
        assert g.num_entities == 6
        assert g.num_relations == 2
        assert g.num_triples == 4

    def test_default_labels(self):
        g = build([[0, 0, 1]])
        assert g.entities.label_of(0) == "e_0"
        assert g.relations.label_of(1) == "r_1"

    def test_custom_labels(self):
        g = KnowledgeGraph.from_arrays(
            name="bio",
            num_entities=2,
            num_relations=1,
            train=np.asarray([[0, 0, 1]]),
            valid=np.zeros((0, 3), dtype=np.int64),
            test=np.zeros((0, 3), dtype=np.int64),
            entity_labels=["aspirin", "headache"],
            relation_labels=["treats"],
        )
        assert g.label_triple((0, 0, 1)) == ("aspirin", "treats", "headache")

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph.from_arrays(
                name="bad",
                num_entities=3,
                num_relations=1,
                train=np.asarray([[0, 0, 1]]),
                valid=np.zeros((0, 3), dtype=np.int64),
                test=np.zeros((0, 3), dtype=np.int64),
                entity_labels=["only-one"],
            )

    def test_mismatched_split_space_rejected(self):
        entities = Vocabulary.from_range("e", 4)
        relations = Vocabulary.from_range("r", 1)
        wrong = TripleSet(np.asarray([[0, 0, 1]]), 99, 1)
        with pytest.raises(ValueError):
            KnowledgeGraph(
                name="bad",
                entities=entities,
                relations=relations,
                train=wrong,
                valid=wrong,
                test=wrong,
            )


class TestDerived:
    def test_all_triples_unions_splits(self):
        g = build([[0, 0, 1]], valid=[(1, 0, 2)], test=[(2, 0, 3)])
        assert len(g.all_triples()) == 3

    def test_complement_size(self):
        g = build([[0, 0, 1]], n=4, k=1)
        assert g.complement_size() == 4 * 4 * 1 - 1

    def test_average_relations_per_entity(self):
        g = build([[0, 0, 1], [1, 0, 2], [2, 0, 3]], n=6)
        assert g.average_relations_per_entity() == pytest.approx(1.0)

    def test_repr_contains_name_and_counts(self):
        g = build([[0, 0, 1]])
        text = repr(g)
        assert "'g'" in text and "train=1" in text
