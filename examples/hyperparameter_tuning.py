"""Hyperparameter analysis for top_n and max_candidates (paper §4.3).

Reproduces the paper's tuning methodology on the FB15K-237 replica with
TransE: sweep both hyperparameters, inspect their effect on runtime,
fact count, quality and efficiency, and derive the recommended values
the way §4.3.2 does (pick top_n past the efficiency elbow, then pick
max_candidates where the CLUSTERING TRIANGLES curve levels off).

Usage::

    python examples/hyperparameter_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    format_series,
    get_trained_model,
    hyperparameter_grid,
)
from repro.kg import GraphStatistics, load_dataset

TOP_N_GRID = (10, 20, 30, 40, 50, 70)
MAX_CANDIDATES_GRID = (50, 100, 200, 300, 400, 500, 700)


def main() -> None:
    graph = load_dataset("fb15k237-like")
    model = get_trained_model("fb15k237-like", "transe", graph=graph)
    stats = GraphStatistics(graph.train)

    print("sweeping the (top_n, max_candidates) grid with CLUSTERING TRIANGLES...")
    points = hyperparameter_grid(
        model,
        graph,
        strategy="cluster_triangles",
        top_n_values=TOP_N_GRID,
        max_candidates_values=MAX_CANDIDATES_GRID,
        seed=0,
        stats=stats,
    )

    # Effect of top_n on efficiency (Figure 9 shape).
    efficiency_by_topn = {}
    for cand in (100, 500):
        efficiency_by_topn[f"max_cand={cand}"] = [
            round(p.efficiency_facts_per_hour)
            for p in points
            if p.max_candidates == cand
        ]
    print()
    print(
        format_series(
            "top_n", list(TOP_N_GRID), efficiency_by_topn,
            title="facts/hour vs top_n (CT)",
        )
    )

    # Effect of top_n on quality (Figure 8b shape).
    mrr_line = [round(p.mrr, 4) for p in points if p.max_candidates == 500]
    print()
    print(
        format_series(
            "top_n", list(TOP_N_GRID), {"mrr (max_cand=500)": mrr_line},
            title="MRR vs top_n (CT): quality deteriorates as the filter loosens",
        )
    )

    # Effect of max_candidates on runtime and efficiency (Figures 7/10).
    runtime_line = [
        round(p.runtime_seconds, 3) for p in points if p.top_n == 50
    ]
    eff_line = [
        round(p.efficiency_facts_per_hour) for p in points if p.top_n == 50
    ]
    print()
    print(
        format_series(
            "max_candidates",
            list(MAX_CANDIDATES_GRID),
            {"runtime_s (top_n=50)": runtime_line, "facts/h (top_n=50)": eff_line},
            title="max_candidates: linear runtime, efficiency levels off",
        )
    )

    # §4.3.2 recommendation logic.
    eff = np.asarray(eff_line, dtype=float)
    plateau = next(
        (
            MAX_CANDIDATES_GRID[i]
            for i in range(1, len(eff))
            if eff[i] < 1.15 * eff[i - 1]
        ),
        MAX_CANDIDATES_GRID[-1],
    )
    print(
        f"\nrecommended values for this replica: top_n=50 "
        f"(past the efficiency elbow but enough facts for stable metrics), "
        f"max_candidates={plateau} (efficiency plateau of the CT curve)"
    )


if __name__ == "__main__":
    main()
