"""RPR011 clean fixture: every mutation holds the owning lock."""

from threading import Lock


class Counter:
    def __init__(self):
        self._lock = Lock()
        self.total = 0

    def add(self, value):
        with self._lock:
            self.total += value
