"""MetricsRegistry semantics: metrics, span trees, global switching."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    disable_observability,
    enable_observability,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounters:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x") is not reg.counter("y")

    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("x").inc(-1)


class TestGauges:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("level")
        gauge.set(2.5)
        gauge.add(-0.5)
        assert gauge.value == 2.0


class TestHistograms:
    def test_bucket_placement(self):
        hist = MetricsRegistry().histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        payload = hist.as_dict()
        assert payload["buckets"] == [0.1, 1.0]
        assert payload["counts"] == [1, 1, 1]  # last slot is the +Inf bucket
        assert payload["count"] == 3
        assert payload["sum"] == pytest.approx(5.55)

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="ascending"):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.1))


class TestSpanTree:
    def test_record_span_builds_nested_tree(self):
        reg = MetricsRegistry()
        reg.record_span(("a",), 2.0, 1.0)
        reg.record_span(("a", "b"), 0.5, 0.25, count=2)
        spans = reg.snapshot()["spans"]
        assert spans["a"]["count"] == 1
        assert spans["a"]["wall_seconds"] == 2.0
        assert spans["a"]["children"]["b"]["count"] == 2
        assert spans["a"]["children"]["b"]["cpu_seconds"] == 0.25

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            MetricsRegistry().record_span((), 1.0)

    def test_snapshot_is_detached_copy(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.record_span(("a",), 1.0)
        snap = reg.snapshot()
        snap["counters"]["x"] = 99
        snap["spans"]["a"]["count"] = 99
        assert reg.snapshot()["counters"]["x"] == 1
        assert reg.snapshot()["spans"]["a"]["count"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(0.5)
        reg.record_span(("a",), 1.0)
        reg.reset()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }


class TestNullRegistry:
    def test_disabled_and_inert(self):
        null = NullRegistry()
        assert not null.enabled
        null.counter("x").inc(5)
        null.gauge("g").set(1.0)
        null.histogram("h").observe(0.1)
        null.record_span(("a",), 1.0)
        assert null.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
        }

    def test_metric_objects_are_shared_noops(self):
        null = NullRegistry()
        assert null.counter("x") is null.counter("y") is null.gauge("z")


class TestGlobalRegistry:
    def test_default_is_null(self):
        assert not get_registry().enabled

    def test_use_registry_scopes_and_restores(self):
        reg = MetricsRegistry()
        before = get_registry()
        with use_registry(reg) as installed:
            assert installed is reg
            assert get_registry() is reg
        assert get_registry() is before

    def test_use_registry_restores_on_error(self):
        before = get_registry()
        with pytest.raises(RuntimeError):
            with use_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is before

    def test_enable_is_idempotent(self):
        try:
            first = enable_observability()
            assert get_registry() is first
            assert enable_observability() is first
        finally:
            disable_observability()
        assert not get_registry().enabled

    def test_set_registry_none_restores_null(self):
        set_registry(MetricsRegistry())
        set_registry(None)
        assert not get_registry().enabled


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self):
        reg = MetricsRegistry()
        workers, per_worker = 8, 2500

        def hammer():
            counter = reg.counter("hits")
            for _ in range(per_worker):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == workers * per_worker

    def test_concurrent_span_recording_is_exact(self):
        reg = MetricsRegistry()
        workers, per_worker = 8, 500

        def hammer():
            for _ in range(per_worker):
                reg.record_span(("work", "unit"), 0.001, 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = reg.snapshot()["spans"]
        assert spans["work"]["children"]["unit"]["count"] == workers * per_worker
