"""The experimental run matrix: dataset × KGE model × sampling strategy.

This module owns:

* per-model default training configurations (the outcome of the
  hyperparameter tuning step of the paper's workflow, Figure 1);
* a trained-model cache (in-process + on-disk) so the many benchmark
  files can share training runs;
* :func:`run_matrix`, which executes discovery for every combination and
  returns flat result rows — the data behind Figures 2, 4 and 6.
"""

from __future__ import annotations

import logging
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..discovery.discover import DiscoveryResult, discover_facts
from ..kg.datasets import load_dataset
from ..kg.graph import KnowledgeGraph
from ..kg.stats import GraphStatistics
from ..kge.base import KGEModel, create_model
from ..kge.config import ModelConfig, TrainConfig
from ..kge.evaluation import evaluate_ranking
from ..kge.training import train_model

logger = logging.getLogger(__name__)

__all__ = [
    "PAPER_MODELS",
    "PAPER_DATASETS",
    "PAPER_STRATEGIES",
    "default_model_config",
    "default_train_config",
    "get_trained_model",
    "clear_model_cache",
    "MatrixRow",
    "run_matrix",
]

#: The five embedding models of the paper's experiments (§4).
PAPER_MODELS = ("complex", "conve", "distmult", "rescal", "transe")

#: The four datasets (replicas) of the paper's experiments, Table 1 order.
PAPER_DATASETS = ("fb15k237-like", "wn18rr-like", "yago310-like", "codexl-like")

#: The five strategies compared in the main experiments; CLUSTERING
#: SQUARES is excluded exactly as in the paper (§4.3).
PAPER_STRATEGIES = (
    "uniform_random",
    "entity_frequency",
    "graph_degree",
    "cluster_coefficient",
    "cluster_triangles",
)

_MODEL_DEFAULTS: dict[str, tuple[ModelConfig, TrainConfig]] = {
    "transe": (
        ModelConfig("transe", dim=32, options={"norm": "l1"}),
        TrainConfig(
            job="negative_sampling",
            loss="margin",
            epochs=60,
            batch_size=256,
            lr=0.01,
            num_negatives=8,
            margin=2.0,
        ),
    ),
    "distmult": (
        ModelConfig("distmult", dim=32),
        TrainConfig(
            job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.05,
            label_smoothing=0.1,
        ),
    ),
    "complex": (
        ModelConfig("complex", dim=32),
        TrainConfig(
            job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.05,
            label_smoothing=0.1,
        ),
    ),
    "rescal": (
        ModelConfig("rescal", dim=16),
        TrainConfig(
            job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.02,
            label_smoothing=0.1,
        ),
    ),
    "conve": (
        ModelConfig("conve", dim=32, options={"num_filters": 16}),
        TrainConfig(
            job="kvsall", loss="bce", epochs=25, batch_size=128, lr=0.005,
            label_smoothing=0.1,
        ),
    ),
    "hole": (
        ModelConfig("hole", dim=32),
        TrainConfig(
            job="kvsall", loss="bce", epochs=60, batch_size=128, lr=0.05,
            label_smoothing=0.1,
        ),
    ),
}


def default_model_config(model_name: str) -> ModelConfig:
    """The tuned model configuration used by the experiment matrix."""
    if model_name not in _MODEL_DEFAULTS:
        raise KeyError(f"no default config for model {model_name!r}")
    return _MODEL_DEFAULTS[model_name][0]


def default_train_config(model_name: str) -> TrainConfig:
    """The tuned training configuration used by the experiment matrix."""
    if model_name not in _MODEL_DEFAULTS:
        raise KeyError(f"no default config for model {model_name!r}")
    return _MODEL_DEFAULTS[model_name][1]


_MODEL_CACHE: dict[tuple[str, str], KGEModel] = {}


def _cache_dir() -> Path:
    return Path(os.environ.get("REPRO_MODEL_CACHE", ".model_cache"))


def clear_model_cache(disk: bool = False) -> None:
    """Drop the in-process model cache (and optionally the disk cache)."""
    _MODEL_CACHE.clear()
    if disk:
        directory = _cache_dir()
        if directory.is_dir():
            for path in directory.glob("*.npz"):
                path.unlink()


def get_trained_model(
    dataset_name: str,
    model_name: str,
    use_disk_cache: bool = True,
    graph: KnowledgeGraph | None = None,
) -> KGEModel:
    """Return a trained model for a (dataset, model) pair, cached.

    The disk cache (``.model_cache/`` or ``$REPRO_MODEL_CACHE``) lets the
    per-figure benchmark files share one training run per configuration.
    """
    key = (dataset_name, model_name)
    if key in _MODEL_CACHE:
        return _MODEL_CACHE[key]

    if graph is None:
        graph = load_dataset(dataset_name)
    model_config = default_model_config(model_name)
    model = create_model(
        model_config.name,
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=model_config.dim,
        seed=model_config.seed,
        **model_config.options,
    )

    cache_path = _cache_dir() / f"{dataset_name}__{model_name}.npz"
    if use_disk_cache and cache_path.is_file():
        try:
            stored = np.load(cache_path)
            model.load_state_dict({k: stored[k] for k in stored.files})
            model.eval()
            _MODEL_CACHE[key] = model
            logger.info("loaded %s/%s from disk cache", dataset_name, model_name)
            return model
        except (KeyError, ValueError, OSError, zipfile.BadZipFile):
            # Stale cache from an older config, or a truncated/corrupt
            # archive — either way retrain and overwrite it below.
            logger.warning(
                "unusable disk cache for %s/%s; retraining",
                dataset_name,
                model_name,
            )
            cache_path.unlink()

    logger.info("training %s on %s", model_name, dataset_name)
    train_model(model, graph, default_train_config(model_name))
    model.eval()  # match the cache-load path (batch norm / dropout)
    if use_disk_cache:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        np.savez(cache_path, **model.state_dict())
    _MODEL_CACHE[key] = model
    return model


@dataclass
class MatrixRow:
    """One cell of the experiment matrix with its discovery metrics."""

    dataset: str
    model: str
    strategy: str
    num_facts: int
    mrr: float
    runtime_seconds: float
    weight_seconds: float
    efficiency_facts_per_hour: float
    test_mrr: float = float("nan")

    @classmethod
    def from_result(
        cls,
        dataset: str,
        model: str,
        result: DiscoveryResult,
        test_mrr: float = float("nan"),
    ) -> "MatrixRow":
        return cls(
            dataset=dataset,
            model=model,
            strategy=result.strategy,
            num_facts=result.num_facts,
            mrr=result.mrr(),
            runtime_seconds=result.runtime_seconds,
            weight_seconds=result.weight_seconds,
            efficiency_facts_per_hour=result.efficiency_facts_per_hour(),
            test_mrr=test_mrr,
        )


def run_matrix(
    datasets: tuple[str, ...] = PAPER_DATASETS,
    models: tuple[str, ...] = PAPER_MODELS,
    strategies: tuple[str, ...] = PAPER_STRATEGIES,
    top_n: int = 500,
    max_candidates: int = 500,
    seed: int = 0,
    evaluate_models: bool = False,
    share_statistics: bool = False,
) -> list[MatrixRow]:
    """Run discovery for every (dataset, model, strategy) combination.

    ``share_statistics=False`` (default) recomputes graph statistics per
    run so each strategy is charged its own weight-computation cost,
    exactly as in the paper's runtime measurements; pass ``True`` to
    amortise it when only fact quality matters.
    """
    rows: list[MatrixRow] = []
    for dataset_name in datasets:
        graph = load_dataset(dataset_name)
        shared_stats = GraphStatistics(graph.train) if share_statistics else None
        for model_name in models:
            model = get_trained_model(dataset_name, model_name, graph=graph)
            test_mrr = (
                evaluate_ranking(model, graph, split="test").mrr
                if evaluate_models
                else float("nan")
            )
            for strategy_name in strategies:
                stats = shared_stats or GraphStatistics(graph.train)
                result = discover_facts(
                    model,
                    graph,
                    strategy=strategy_name,
                    top_n=top_n,
                    max_candidates=max_candidates,
                    seed=seed,
                    stats=stats,
                )
                rows.append(
                    MatrixRow.from_result(dataset_name, model_name, result, test_mrr)
                )
    return rows
