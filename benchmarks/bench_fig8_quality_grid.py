"""Figure 8 — fact quality (MRR) under the hyperparameter grid
(paper §4.3.1, FB15K-237 + TransE, CLUSTERING TRIANGLES).

(a) MRR vs max_candidates at top_n fixed — expected flat/stable;
(b) MRR vs top_n at max_candidates fixed — expected decreasing, because a
looser rank filter admits worse facts.
"""

from __future__ import annotations

import numpy as np
from common import (
    MAX_CANDIDATES_GRID,
    TOP_N_GRID,
    grid_points,
    save_and_print,
)

from repro.experiments import format_series


def test_fig8_quality_grid(benchmark):
    points = benchmark.pedantic(
        lambda: grid_points("cluster_triangles"), rounds=1, iterations=1
    )
    top_n_pivot = 50
    cand_pivot = 500

    mrr_vs_candidates = [
        round(p.mrr, 4)
        for p in points
        if p.top_n == top_n_pivot
    ]
    mrr_vs_top_n = [
        round(p.mrr, 4)
        for p in points
        if p.max_candidates == cand_pivot
    ]

    text = (
        format_series(
            "max_candidates",
            list(MAX_CANDIDATES_GRID),
            {f"MRR (top_n={top_n_pivot})": mrr_vs_candidates},
            title="Figure 8a — MRR vs max_candidates (fb15k237-like + TransE, CT)",
        )
        + "\n\n"
        + format_series(
            "top_n",
            list(TOP_N_GRID),
            {f"MRR (max_candidates={cand_pivot})": mrr_vs_top_n},
            title="Figure 8b — MRR vs top_n (fb15k237-like + TransE, CT)",
        )
    )
    save_and_print("fig8_quality_grid", text)

    # Shape check 1 (8b): increasing top_n reduces MRR.
    assert mrr_vs_top_n[-1] < mrr_vs_top_n[0]
    # Monotone non-increasing up to small noise.
    diffs = np.diff(mrr_vs_top_n)
    assert (diffs <= 1e-9).sum() >= len(diffs) - 1

    # Shape check 2 (8a): MRR stays within a stable band as
    # max_candidates grows (no systematic degradation).
    values = np.asarray(mrr_vs_candidates)
    assert values.min() > 0.5 * values.max()
