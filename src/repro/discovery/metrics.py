"""Metrics for comparing fact-discovery runs (paper §3.3).

Quality is the MRR of the discovered facts against their corruptions;
efficiency is discovered facts per hour of total runtime.  Both are thin
functions so they can also be applied to externally produced rank arrays.
"""

from __future__ import annotations

import numpy as np

from .discover import DiscoveryResult

__all__ = [
    "discovery_mrr",
    "efficiency_facts_per_hour",
    "theoretical_mrr_floor",
    "long_tail_coverage",
    "compare_results",
]


def discovery_mrr(ranks: np.ndarray) -> float:
    """Mean reciprocal rank of a set of discovered facts (Equation 7)."""
    ranks = np.asarray(ranks, dtype=np.float64)
    if ranks.size == 0:
        return 0.0
    if (ranks < 1).any():
        raise ValueError("ranks must be >= 1")
    return float((1.0 / ranks).mean())


def efficiency_facts_per_hour(num_facts: int, runtime_seconds: float) -> float:
    """The paper's throughput metric: facts discovered per hour."""
    if num_facts < 0:
        raise ValueError("num_facts must be non-negative")
    if runtime_seconds <= 0:
        raise ValueError("runtime must be positive")
    return num_facts / (runtime_seconds / 3600.0)


def theoretical_mrr_floor(top_n: int) -> float:
    """Lowest possible MRR of a discovery run with quality threshold ``top_n``.

    Reached when every discovered fact ranks exactly ``top_n`` — the paper
    quotes 0.002 for ``top_n = 500``.
    """
    if top_n < 1:
        raise ValueError("top_n must be >= 1")
    return 1.0 / top_n


def long_tail_coverage(
    facts: np.ndarray, degree: np.ndarray, quantile: float = 0.5
) -> float:
    """Fraction of discovered facts that touch a long-tail entity.

    The paper's §6 criticises that all popularity-based strategies ignore
    the long tail "where the need for discovering new facts is higher";
    this metric quantifies it.  An entity is *long-tail* when its degree
    is at or below the given quantile of the (positive) degree
    distribution; a fact counts when its subject or object is long-tail.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {quantile}")
    facts = np.asarray(facts)
    if facts.size == 0:
        return 0.0
    degree = np.asarray(degree, dtype=np.float64)
    active = degree[degree > 0]
    if active.size == 0:
        return 0.0
    threshold = np.quantile(active, quantile)
    is_tail = degree <= threshold
    touches = is_tail[facts[:, 0]] | is_tail[facts[:, 2]]
    return float(touches.mean())


def compare_results(results: dict[str, DiscoveryResult]) -> list[dict[str, float]]:
    """Tabulate a set of named discovery runs, best MRR first."""
    rows = []
    for label, result in results.items():
        row = {"label": label}
        row.update(result.summary())
        rows.append(row)
    rows.sort(key=lambda r: r["mrr"], reverse=True)
    return rows
