"""Durable file writes: write-temp → flush → fsync → rename.

A crash (or an injected fault) mid-write must never leave a truncated
archive where a reader expects a checkpoint — PR 2 found every committed
``.model_cache`` archive corrupt for exactly this reason.  All binary
artefact writes in :mod:`repro.kge.checkpoint` and
:mod:`repro.experiments.runner` route through this module; writing them
with a plain ``open(path, "wb")`` is rejected by lint rule RPR007.

The content checksum helpers give readers end-to-end integrity checking
on top of the zip CRCs: :func:`digest_arrays` is embedded in checkpoint
headers at save time and re-verified at load time.
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from . import faults

__all__ = ["atomic_write", "atomic_write_bytes", "atomic_savez", "digest_arrays"]


def _fsync_dir(directory: Path) -> None:
    """Flush the directory entry so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename is still atomic
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: Path | str) -> Iterator[Path]:
    """Yield a temp path next to ``path``; publish it atomically on success.

    The caller writes (and closes) the temp file inside the ``with``
    block.  On clean exit the temp file is fsynced and renamed over
    ``path`` via :func:`os.replace`, so concurrent readers only ever see
    the old complete file or the new complete file.  On exception the
    temp file is removed and ``path`` is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        yield tmp
        with open(tmp, "rb") as handle:
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    faults.corrupt_file(path)  # test-only hook; no-op without an active plan


def atomic_write_bytes(path: Path | str, data: bytes) -> None:
    """Atomically replace ``path`` with ``data``."""
    with atomic_write(path) as tmp:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())


def atomic_savez(path: Path | str, **arrays: np.ndarray) -> None:
    """Atomic :func:`numpy.savez` — the sanctioned checkpoint writer.

    Writes through an open file handle so numpy cannot append an
    extension to the temp name, then flushes and publishes atomically.
    """
    with atomic_write(path) as tmp:
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())


def digest_arrays(arrays: Mapping[str, np.ndarray]) -> str:
    """Order-independent sha256 over named arrays (dtype+shape+bytes).

    The digest covers the parameter *content*, not the zip container, so
    a checkpoint tampered with or silently bit-flipped after writing is
    caught even when the archive itself still unzips cleanly.
    """
    digest = hashlib.sha256()
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.tobytes())
    return digest.hexdigest()
