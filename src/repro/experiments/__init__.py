"""Experiment framework: run matrix, hyperparameter grids, reporting."""

from .gridsearch import (
    PAPER_MAX_CANDIDATES_GRID,
    PAPER_TOP_N_GRID,
    GridPoint,
    GridSearchResult,
    hyperparameter_grid,
)
from .model_selection import SearchResult, Trial, grid_search_models
from .report import ascii_bars, format_series, format_table, group_rows
from .significance import (
    MRRInterval,
    SignTestResult,
    bootstrap_mrr_ci,
    paired_sign_test,
)
from .runner import (
    PAPER_DATASETS,
    PAPER_MODELS,
    PAPER_STRATEGIES,
    CampaignState,
    MatrixRow,
    clear_model_cache,
    default_model_config,
    default_train_config,
    get_trained_model,
    run_matrix,
)
from .workflow import FactDiscoveryWorkflow, WorkflowReport, WorkflowResult

__all__ = [
    "GridPoint",
    "GridSearchResult",
    "hyperparameter_grid",
    "Trial",
    "SearchResult",
    "grid_search_models",
    "PAPER_TOP_N_GRID",
    "PAPER_MAX_CANDIDATES_GRID",
    "format_table",
    "format_series",
    "ascii_bars",
    "group_rows",
    "MRRInterval",
    "bootstrap_mrr_ci",
    "SignTestResult",
    "paired_sign_test",
    "MatrixRow",
    "CampaignState",
    "run_matrix",
    "get_trained_model",
    "clear_model_cache",
    "default_model_config",
    "default_train_config",
    "PAPER_DATASETS",
    "PAPER_MODELS",
    "PAPER_STRATEGIES",
    "FactDiscoveryWorkflow",
    "WorkflowReport",
    "WorkflowResult",
]
