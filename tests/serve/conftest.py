"""Serving-layer fixtures: checkpoints on disk and warm registries.

The checkpoints are saved once per test session from the shared trained
models; registries resolve the dataset name straight to the in-memory
``tiny_graph`` so no files beyond the ``.npz`` archives are involved.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.kge import create_model, save_model
from repro.serve import ModelRegistry


@pytest.fixture(scope="session")
def checkpoint_path(tmp_path_factory, trained_distmult):
    path = tmp_path_factory.mktemp("serve-ckpt") / "distmult.npz"
    save_model(trained_distmult, path)
    return path


@pytest.fixture(scope="session")
def alt_checkpoints(tmp_path_factory, tiny_graph):
    """Three distinct-seed (hence distinct-digest) DistMult checkpoints."""
    root = tmp_path_factory.mktemp("serve-alt")
    paths = []
    for seed in (1, 2, 3):
        model = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
            seed=seed,
        )
        model.eval()
        path = root / f"distmult-s{seed}.npz"
        save_model(model, path)
        paths.append(path)
    return paths


@pytest.fixture()
def make_registry(tiny_graph):
    """Registry factory whose dataset names all resolve to ``tiny_graph``."""

    def build(**kwargs):
        kwargs.setdefault("graph_loader", lambda name: tiny_graph)
        kwargs.setdefault("cache_size", 512)
        return ModelRegistry(**kwargs)

    return build


@pytest.fixture()
def session(make_registry, checkpoint_path):
    session = Session(make_registry())
    session.add_model("tiny", checkpoint_path)
    return session


@pytest.fixture()
def model_id(session):
    return session.registry.refs()[0].model_id


@pytest.fixture()
def test_triples(tiny_graph):
    """A handful of held-out triples as wire-ready tuples."""
    arr = tiny_graph.test.array[:4]
    return tuple((int(s), int(r), int(o)) for s, r, o in arr)
