"""ModelRegistry: cataloguing, lazy loads, resolution, pin-safe eviction."""

from __future__ import annotations

import pytest

from repro.api.types import BadRequestError, ModelNotFoundError
from repro.kge import load_model


class TestCatalogue:
    def test_register_reads_header_only(self, make_registry, checkpoint_path):
        registry = make_registry()
        ref = registry.register("tiny", checkpoint_path)
        assert ref.dataset == "tiny"
        assert ref.model == "distmult"
        assert len(ref.digest) == 12
        assert registry.loaded_ids() == ()  # nothing loaded yet

    def test_register_is_idempotent(self, make_registry, checkpoint_path):
        registry = make_registry()
        first = registry.register("tiny", checkpoint_path)
        second = registry.register("tiny", checkpoint_path)
        assert first == second
        assert len(registry) == 1

    def test_register_conflicting_path_is_an_error(
        self, make_registry, checkpoint_path, tmp_path
    ):
        registry = make_registry()
        registry.register("tiny", checkpoint_path)
        clone = tmp_path / "clone.npz"
        clone.write_bytes(checkpoint_path.read_bytes())
        with pytest.raises(ValueError, match="already registered"):
            registry.register("tiny", clone)

    def test_describe_flags_loaded_entries(self, make_registry, checkpoint_path):
        registry = make_registry()
        ref = registry.register("tiny", checkpoint_path)
        (info,) = registry.describe()
        assert not info.loaded
        assert info.dim == 16
        with registry.acquire(ref.model_id):
            pass
        (info,) = registry.describe()
        assert info.loaded

    def test_counters(self, make_registry, checkpoint_path):
        registry = make_registry()
        ref = registry.register("tiny", checkpoint_path)
        assert registry.counters() == {
            "models_count": 1, "loaded_count": 0, "pinned_count": 0,
        }
        with registry.acquire(ref.model_id):
            assert registry.counters()["pinned_count"] == 1
        assert registry.counters() == {
            "models_count": 1, "loaded_count": 1, "pinned_count": 0,
        }


class TestResolution:
    def test_digestless_and_prefix_ids_resolve(self, make_registry, checkpoint_path):
        registry = make_registry()
        ref = registry.register("tiny", checkpoint_path)
        for model_id in (
            ref.model_id,
            "tiny/distmult",
            f"tiny/distmult@{ref.digest[:4]}",
        ):
            with registry.acquire(model_id) as entry:
                assert entry.spec.ref == ref

    def test_unknown_model_raises_typed_404(self, make_registry, checkpoint_path):
        registry = make_registry()
        registry.register("tiny", checkpoint_path)
        with pytest.raises(ModelNotFoundError, match="no model"):
            registry.acquire("tiny/transe")

    def test_ambiguous_digestless_id_raises_400(
        self, make_registry, alt_checkpoints
    ):
        registry = make_registry()
        registry.register("tiny", alt_checkpoints[0])
        registry.register("tiny", alt_checkpoints[1])
        with pytest.raises(BadRequestError, match="ambiguous"):
            registry.acquire("tiny/distmult")


class TestWarmState:
    def test_repeat_acquire_reuses_the_entry(self, make_registry, checkpoint_path):
        registry = make_registry()
        ref = registry.register("tiny", checkpoint_path)
        with registry.acquire(ref.model_id) as first:
            pass
        with registry.acquire(ref.model_id) as second:
            pass
        assert first is second  # model, engine and caches stay warm

    def test_loaded_model_matches_checkpoint(
        self, make_registry, checkpoint_path, tiny_graph
    ):
        import numpy as np

        registry = make_registry()
        ref = registry.register("tiny", checkpoint_path)
        reference = load_model(checkpoint_path)
        with registry.acquire(ref.model_id) as entry:
            s = np.asarray([0, 1, 2])
            r = np.asarray([0, 1, 2])
            np.testing.assert_array_equal(
                entry.model.scores_sp(s, r), reference.scores_sp(s, r)
            )
            assert entry.graph is tiny_graph

    def test_graph_stats_computed_once(self, make_registry, checkpoint_path):
        registry = make_registry()
        ref = registry.register("tiny", checkpoint_path)
        with registry.acquire(ref.model_id) as entry:
            assert entry.graph_stats() is entry.graph_stats()


class TestEviction:
    def test_lru_evicts_cold_entries(self, make_registry, alt_checkpoints):
        registry = make_registry(capacity=2)
        refs = [registry.register("tiny", path) for path in alt_checkpoints]
        for ref in refs:
            with registry.acquire(ref.model_id):
                pass
        assert len(registry.loaded_ids()) == 2
        # The first registered model was least recently used.
        assert refs[0].model_id not in registry.loaded_ids()

    def test_pinned_entries_survive_capacity_pressure(
        self, make_registry, alt_checkpoints
    ):
        registry = make_registry(capacity=1)
        first, second = (
            registry.register("tiny", path) for path in alt_checkpoints[:2]
        )
        with registry.acquire(first.model_id) as held:
            with registry.acquire(second.model_id):
                # Both pinned: capacity overshoot is allowed, nothing dropped.
                assert set(registry.loaded_ids()) == {
                    first.model_id, second.model_id,
                }
            # Releasing the second lets eviction shrink back to capacity,
            # but never by dropping the still-pinned first entry.
            assert registry.loaded_ids() == (first.model_id,)
            assert held.pins == 1
        assert registry.counters()["pinned_count"] == 0

    def test_lru_order_refreshes_on_hit(self, make_registry, alt_checkpoints):
        registry = make_registry(capacity=2)
        refs = [registry.register("tiny", path) for path in alt_checkpoints]
        with registry.acquire(refs[0].model_id):
            pass
        with registry.acquire(refs[1].model_id):
            pass
        with registry.acquire(refs[0].model_id):  # refresh 0 → 1 is now LRU
            pass
        with registry.acquire(refs[2].model_id):
            pass
        assert refs[1].model_id not in registry.loaded_ids()
        assert refs[0].model_id in registry.loaded_ids()
