"""Knowledge-graph substrate: triples, vocabularies, statistics, datasets.

Public surface:

* :class:`TripleSet` — integer triple storage with fast membership tests.
* :class:`KnowledgeGraph` — vocabularies plus train/valid/test splits.
* :class:`Vocabulary` — label ↔ id mapping.
* :class:`GraphStatistics` and the free functions in :mod:`repro.kg.stats`
  — degree, frequency, triangles, clustering coefficients.
* :func:`load_dataset` — benchmark replica registry (see
  :mod:`repro.kg.datasets` for the substitution rationale);
  :func:`load_full_dataset` for the full-scale out-of-core replicas.
* :func:`generate_kg` / :class:`KGProfile` — synthetic KG generation;
  :func:`generate_kg_streaming` for chunked generation straight into a
  mmap-backed store.
* :class:`StorageBackend` / :class:`InMemoryBackend` /
  :class:`MmapBackend` — the storage substrate behind every
  :class:`TripleSet` (see :mod:`repro.kg.storage`).
* :func:`load_dataset_dir` / :func:`save_dataset_dir` — TSV dataset I/O;
  :func:`save_kg_store` / :func:`load_kg_store` — binary KG stores.
"""

from .analysis import (
    RelationProfile,
    cardinality_histogram,
    dataset_report,
    powerlaw_exponent,
    relation_profiles,
)
from .blocked import (
    DEFAULT_MEMORY_BUDGET,
    local_triangles_blocked,
    plan_node_blocks,
    square_clustering_blocked,
)
from .datasets import (
    DATASET_PROFILES,
    FULL_SCALE_PROFILES,
    PAPER_METADATA,
    PaperDatasetMetadata,
    available_datasets,
    available_full_datasets,
    load_dataset,
    load_full_dataset,
    resolve_dataset,
)
from .generators import KGProfile, generate_kg, generate_kg_streaming, scale_profile
from .graph import KnowledgeGraph
from .io import (
    kg_store_exists,
    load_dataset_dir,
    load_kg_store,
    read_triples_tsv,
    save_dataset_dir,
    save_kg_store,
    write_triples_tsv,
)
from .stats import (
    OBJECT,
    SUBJECT,
    GraphStatistics,
    degrees,
    entity_frequency,
    global_clustering_coefficient,
    local_clustering_coefficient,
    local_triangles,
    side_entities,
    square_clustering,
    square_clustering_reference,
    to_networkx,
    undirected_adjacency,
)
from .storage import (
    InMemoryBackend,
    MmapBackend,
    StorageBackend,
    StorageCorruptError,
    open_backend,
)
from .transforms import (
    InverseLeak,
    detect_inverse_leakage,
    filter_relations,
    induced_subgraph,
    remove_inverse_leakage,
    sample_complement,
)
from .triples import TripleSet, encode_keys
from .vocabulary import Vocabulary

__all__ = [
    "TripleSet",
    "encode_keys",
    "KnowledgeGraph",
    "Vocabulary",
    "GraphStatistics",
    "SUBJECT",
    "OBJECT",
    "undirected_adjacency",
    "degrees",
    "entity_frequency",
    "side_entities",
    "to_networkx",
    "local_triangles",
    "local_clustering_coefficient",
    "square_clustering",
    "square_clustering_reference",
    "global_clustering_coefficient",
    "DEFAULT_MEMORY_BUDGET",
    "plan_node_blocks",
    "local_triangles_blocked",
    "square_clustering_blocked",
    "StorageBackend",
    "InMemoryBackend",
    "MmapBackend",
    "StorageCorruptError",
    "open_backend",
    "KGProfile",
    "generate_kg",
    "generate_kg_streaming",
    "scale_profile",
    "DATASET_PROFILES",
    "FULL_SCALE_PROFILES",
    "PAPER_METADATA",
    "PaperDatasetMetadata",
    "available_datasets",
    "available_full_datasets",
    "load_dataset",
    "load_full_dataset",
    "resolve_dataset",
    "load_dataset_dir",
    "save_dataset_dir",
    "save_kg_store",
    "load_kg_store",
    "kg_store_exists",
    "read_triples_tsv",
    "write_triples_tsv",
    "RelationProfile",
    "relation_profiles",
    "cardinality_histogram",
    "powerlaw_exponent",
    "dataset_report",
    "InverseLeak",
    "detect_inverse_leakage",
    "remove_inverse_leakage",
    "induced_subgraph",
    "filter_relations",
    "sample_complement",
]
