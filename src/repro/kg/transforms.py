"""Graph transforms: subgraphs, relation filtering, leakage repair.

The most notable tool here is inverse-relation **test-leakage detection**:
the construction that produced FB15K-237 from FB15K and WN18RR from WN18
(paper §4.1.2).  A pair of relations (r, r′) leaks when most (s, r, o)
triples have a matching (o, r′, s); evaluating on such data lets a model
score well by memorising the inversion instead of learning semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .graph import KnowledgeGraph
from .triples import TripleSet
from .vocabulary import Vocabulary

__all__ = [
    "induced_subgraph",
    "filter_relations",
    "sample_complement",
    "InverseLeak",
    "detect_inverse_leakage",
    "remove_inverse_leakage",
]


def sample_complement(
    graph: KnowledgeGraph,
    count: int,
    seed: int = 0,
    max_resample_rounds: int = 32,
) -> np.ndarray:
    """Uniformly sample ``count`` distinct triples from the complement.

    The complement of a KG is astronomically larger than the KG itself
    (|E|²·|R| − |G|), so rejection sampling converges almost immediately;
    the bounded resampling merely guards against degenerate tiny graphs.
    Used for building negative test sets and classification baselines.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    capacity = graph.complement_size()
    if count > capacity:
        raise ValueError(
            f"requested {count} complement triples but only {capacity} exist"
        )
    rng = np.random.default_rng(seed)
    known = graph.all_triples()
    collected = np.zeros((0, 3), dtype=np.int64)
    for _ in range(max_resample_rounds):
        need = count - len(collected)
        if need <= 0:
            break
        batch = np.stack(
            [
                rng.integers(0, graph.num_entities, 2 * need),
                rng.integers(0, graph.num_relations, 2 * need),
                rng.integers(0, graph.num_entities, 2 * need),
            ],
            axis=1,
        )
        batch = batch[~known.contains(batch)]
        collected = np.unique(np.concatenate([collected, batch]), axis=0)
    if len(collected) < count:
        raise RuntimeError(
            "failed to collect enough complement triples; the graph is "
            "nearly complete"
        )
    return collected[rng.permutation(len(collected))[:count]]


def _rebuild(
    graph: KnowledgeGraph,
    train: np.ndarray,
    valid: np.ndarray,
    test: np.ndarray,
    suffix: str,
) -> KnowledgeGraph:
    return KnowledgeGraph(
        name=f"{graph.name}-{suffix}",
        entities=graph.entities,
        relations=graph.relations,
        train=TripleSet(train, graph.num_entities, graph.num_relations),
        valid=TripleSet(valid, graph.num_entities, graph.num_relations),
        test=TripleSet(test, graph.num_entities, graph.num_relations),
        metadata=dict(graph.metadata),
    )


def induced_subgraph(
    graph: KnowledgeGraph, entity_ids: np.ndarray, compact: bool = True
) -> KnowledgeGraph:
    """Subgraph induced by an entity subset (both endpoints must remain).

    With ``compact`` (default) entity and relation ids are re-densified so
    the result is directly usable for embedding training; otherwise the
    original id space is kept.
    """
    keep = np.zeros(graph.num_entities, dtype=bool)
    keep[np.asarray(entity_ids, dtype=np.int64)] = True

    def select(split: TripleSet) -> np.ndarray:
        arr = split.array
        mask = keep[arr[:, 0]] & keep[arr[:, 2]]
        return arr[mask]

    train, valid, test = (select(s) for s in (graph.train, graph.valid, graph.test))
    if not compact:
        return _rebuild(graph, train, valid, test, "sub")

    used_entities = np.unique(
        np.concatenate([t[:, [0, 2]].ravel() for t in (train, valid, test)])
        if len(train) + len(valid) + len(test)
        else np.zeros(0, dtype=np.int64)
    )
    used_relations = np.unique(
        np.concatenate([t[:, 1] for t in (train, valid, test)])
        if len(train) + len(valid) + len(test)
        else np.zeros(0, dtype=np.int64)
    )
    entity_map = np.full(graph.num_entities, -1, dtype=np.int64)
    entity_map[used_entities] = np.arange(len(used_entities))
    relation_map = np.full(graph.num_relations, -1, dtype=np.int64)
    relation_map[used_relations] = np.arange(len(used_relations))

    def remap(arr: np.ndarray) -> np.ndarray:
        out = arr.copy()
        if out.size:
            out[:, 0] = entity_map[arr[:, 0]]
            out[:, 1] = relation_map[arr[:, 1]]
            out[:, 2] = entity_map[arr[:, 2]]
        return out

    entities = Vocabulary(
        graph.entities.label_of(int(e)) for e in used_entities
    )
    relations = Vocabulary(
        graph.relations.label_of(int(r)) for r in used_relations
    )
    n, k = max(len(entities), 2), max(len(relations), 1)
    return KnowledgeGraph(
        name=f"{graph.name}-sub",
        entities=entities if len(entities) >= 2 else Vocabulary.from_range("e", 2),
        relations=relations if len(relations) >= 1 else Vocabulary.from_range("r", 1),
        train=TripleSet(remap(train), n, k),
        valid=TripleSet(remap(valid), n, k),
        test=TripleSet(remap(test), n, k),
        metadata=dict(graph.metadata),
    )


def filter_relations(graph: KnowledgeGraph, relation_ids) -> KnowledgeGraph:
    """Keep only the triples of the given relations (id space unchanged)."""
    wanted = np.zeros(graph.num_relations, dtype=bool)
    wanted[np.asarray(list(relation_ids), dtype=np.int64)] = True

    def select(split: TripleSet) -> np.ndarray:
        arr = split.array
        return arr[wanted[arr[:, 1]]]

    return _rebuild(
        graph,
        select(graph.train),
        select(graph.valid),
        select(graph.test),
        "filtered",
    )


@dataclass(frozen=True)
class InverseLeak:
    """An (r, r′) relation pair whose triples mirror each other."""

    relation: int
    inverse: int
    overlap: float  # fraction of r-triples inverted in r′


def detect_inverse_leakage(
    graph: KnowledgeGraph, threshold: float = 0.8
) -> list[InverseLeak]:
    """Find relation pairs (r, r′) with ``|{(s,r,o): (o,r′,s) ∈ G}| / |r|``
    at or above ``threshold`` over the training split.

    Self-pairs (r, r) are reported too — they indicate symmetric
    relations, which leak the same way when splits are random.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    train = graph.train
    arr = train.array
    leaks = []
    for relation in train.unique_relations():
        rel = arr[arr[:, 1] == relation]
        flipped = rel[:, [2, 1, 0]].copy()
        for other in train.unique_relations():
            flipped[:, 1] = other
            overlap = train.contains(flipped).mean()
            if overlap >= threshold:
                leaks.append(
                    InverseLeak(
                        relation=int(relation),
                        inverse=int(other),
                        overlap=float(overlap),
                    )
                )
    return leaks


def remove_inverse_leakage(
    graph: KnowledgeGraph, threshold: float = 0.8
) -> tuple[KnowledgeGraph, list[InverseLeak]]:
    """Drop one relation of each leaking pair — the FB15K-237 recipe.

    For every detected (r, r′) pair with ``r ≠ r′`` the relation with
    fewer training triples is removed entirely (from all splits).
    Symmetric self-leaks are left in place, matching how WN18RR retains
    symmetric relations.  Returns the repaired graph and the detected
    leaks.
    """
    leaks = detect_inverse_leakage(graph, threshold=threshold)
    counts = np.bincount(graph.train.relations, minlength=graph.num_relations)
    to_drop: set[int] = set()
    for leak in leaks:
        if leak.relation == leak.inverse:
            continue
        pair = (leak.relation, leak.inverse)
        victim = min(pair, key=lambda rel: (counts[rel], rel))
        to_drop.add(victim)
    keep = [r for r in range(graph.num_relations) if r not in to_drop]
    return filter_relations(graph, keep), leaks
