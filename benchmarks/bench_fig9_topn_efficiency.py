"""Figure 9 — impact of top_n on discovery efficiency (paper §4.3.2).

(a) CLUSTERING TRIANGLES and (b) UNIFORM RANDOM on FB15K-237-like +
TransE; one line per max_candidates value.  Expected shape: efficiency
rises with top_n (more candidates pass the filter at zero extra cost),
which is why the paper settles on top_n = 500 rather than the elbow at
200 (here scaled: 50 rather than 20).
"""

from __future__ import annotations

import numpy as np
from common import (
    MAX_CANDIDATES_GRID,
    TOP_N_GRID,
    grid_points,
    save_and_print,
)

from repro.experiments import format_series


def _series_for(points) -> dict[str, list[float]]:
    series = {}
    for cand in MAX_CANDIDATES_GRID:
        series[f"max_cand={cand}"] = [
            round(p.efficiency_facts_per_hour)
            for p in points
            if p.max_candidates == cand
        ]
    return series


def test_fig9_topn_efficiency(benchmark):
    ct_points = benchmark.pedantic(
        lambda: grid_points("cluster_triangles"), rounds=1, iterations=1
    )
    ur_points = grid_points("uniform_random")

    text = (
        format_series(
            "top_n", list(TOP_N_GRID), _series_for(ct_points),
            title="Figure 9a — facts/hour vs top_n (CLUSTERING TRIANGLES)",
        )
        + "\n\n"
        + format_series(
            "top_n", list(TOP_N_GRID), _series_for(ur_points),
            title="Figure 9b — facts/hour vs top_n (UNIFORM RANDOM)",
        )
    )
    save_and_print("fig9_topn_efficiency", text)

    # Shape check: efficiency increases with top_n for both strategies
    # (endpoints compared per max_candidates line, averaged).
    for points in (ct_points, ur_points):
        series = _series_for(points)
        arr = np.asarray([list(v) for v in series.values()], dtype=float)
        assert arr[:, -1].mean() > arr[:, 0].mean()
