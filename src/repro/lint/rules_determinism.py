"""RPR010 — inter-procedural determinism taint.

The paper's claims rest on bit-reproducible pipelines: identical seeds
must give identical sampling weights, negatives, and ranks.  A single
unseeded generator or a set iterated into an array anywhere *below*
``train_model``/``discover_facts``/the ranking engine breaks that, even
when the entry point itself is clean.  This rule walks the call graph
from those entry points and flags every reachable hazard, naming the
path that reaches it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .callgraph import split_node
from .findings import Finding
from .rules import ProjectRule, register_rule

if TYPE_CHECKING:
    from .callgraph import CallGraph, ProjectIndex

__all__ = ["DeterminismTaintRule"]

#: Top-level functions that start a reproducibility-sensitive pipeline.
ENTRY_FUNCTIONS = frozenset({"train_model", "discover_facts", "fit"})
#: Classes whose every method is treated as a pipeline entry point.
ENTRY_CLASSES = frozenset({"RankingEngine"})


@register_rule
class DeterminismTaintRule(ProjectRule):
    rule_id = "RPR010"
    name = "determinism-taint"
    description = (
        "unseeded RNG or unordered-set iteration reachable from "
        "train_model/discover_facts/RankingEngine"
    )
    rationale = (
        "Bit-reproducibility is a whole-pipeline property: an unseeded "
        "default_rng() or a set materialised into an array three calls "
        "below discover_facts() silently changes weights and ranks "
        "between runs.  Per-file rules cannot see the call chain; this "
        "rule taints everything reachable from the pipeline entry points."
    )
    example = (
        "def discover_facts(kg):\n"
        "    return _sample(kg)\n"
        "\n"
        "def _sample(kg):\n"
        "    rng = np.random.default_rng()   # RPR010: unseeded, reachable\n"
        "    return list({t for t in kg})    # RPR010: unordered iteration\n"
    )

    def check_project(
        self, index: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        entries = []
        for key, (_module, fn) in graph.nodes.items():
            if fn.cls in ENTRY_CLASSES:
                entries.append(key)
            elif (
                fn.cls is None
                and fn.name in ENTRY_FUNCTIONS
                and "<locals>" not in fn.qual
            ):
                entries.append(key)
        parents = graph.reachable(sorted(entries))
        for key in sorted(parents):
            module, qual = split_node(key)
            fn = graph.nodes[key][1]
            if not fn.hazards:
                continue
            path = index.modules[module].path
            witness = " -> ".join(graph.witness_path(parents, key))
            for hazard in fn.hazards:
                yield self.project_finding(
                    path,
                    hazard.lineno,
                    hazard.col,
                    f"{hazard.detail} in '{qual}' (reachable via {witness})",
                )
