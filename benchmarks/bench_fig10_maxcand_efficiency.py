"""Figure 10 — impact of max_candidates on efficiency at top_n fixed
(paper §4.3.2).

(a) CLUSTERING TRIANGLES: efficiency grows then levels off around the
paper's chosen value (500); (b) UNIFORM RANDOM: noisier, which is why the
paper anchors the choice on the CT curve.
"""

from __future__ import annotations

import numpy as np
from common import MAX_CANDIDATES_GRID, grid_points, save_and_print

from repro.experiments import format_series

_TOP_N_PIVOT = 50  # the paper's 500, scaled with the rank threshold


def _line(points) -> list[float]:
    return [
        round(p.efficiency_facts_per_hour)
        for p in points
        if p.top_n == _TOP_N_PIVOT
    ]


def test_fig10_maxcand_efficiency(benchmark):
    ct_points = benchmark.pedantic(
        lambda: grid_points("cluster_triangles"), rounds=1, iterations=1
    )
    ur_points = grid_points("uniform_random")

    ct_line = _line(ct_points)
    ur_line = _line(ur_points)
    text = format_series(
        "max_candidates",
        list(MAX_CANDIDATES_GRID),
        {
            f"CT facts/h (top_n={_TOP_N_PIVOT})": ct_line,
            f"UR facts/h (top_n={_TOP_N_PIVOT})": ur_line,
        },
        title="Figure 10 — facts/hour vs max_candidates (fb15k237-like + TransE)",
    )
    save_and_print("fig10_maxcand_efficiency", text)

    # Shape check: raising the candidate budget does not collapse CT's
    # efficiency — the curve stays within a band of its peak on the
    # upper half of the grid, i.e. it levels off rather than decays.
    ct = np.asarray(ct_line, dtype=float)
    upper_half = ct[len(ct) // 2 :]
    assert upper_half.min() > 0.4 * ct.max()
