"""Shared infrastructure for the per-figure benchmark modules.

The paper's experiments run on graphs of 14k–123k entities with
``top_n = 500`` and ``max_candidates = 500``.  The replicas are ~10–100×
smaller in entities, so the rank threshold is scaled by ~10× to
``top_n = 50`` (same ~3% quantile of the entity space on the FB replica);
``max_candidates`` is a per-relation budget independent of graph size and
keeps the paper's value of 500.

The expensive artefacts — the 4 × 5 × 5 run matrix behind Figures 2/4/6
and the hyperparameter grids behind Figures 7–10 — are computed once per
pytest session and shared by every benchmark module.  Model training is
additionally cached on disk (``.model_cache/``).

Each benchmark writes its table to ``benchmarks/results/<name>.txt`` and
prints it (visible with ``pytest -s``).
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import (
    PAPER_DATASETS,
    PAPER_MODELS,
    PAPER_STRATEGIES,
    GridPoint,
    MatrixRow,
    get_trained_model,
    hyperparameter_grid,
    run_matrix,
)
from repro.kg import GraphStatistics, load_dataset

#: Paper values scaled to the replica graphs (see module docstring).
TOP_N_DEFAULT = 50
MAX_CANDIDATES_DEFAULT = 500

#: §4.3.1 grids, top_n scaled 10× down with the rank threshold.
TOP_N_GRID = (10, 20, 30, 40, 50, 70)
MAX_CANDIDATES_GRID = (50, 100, 200, 300, 400, 500, 700)

RESULTS_DIR = Path(__file__).parent / "results"

_MATRIX_CACHE: list[MatrixRow] | None = None
_GRID_CACHE: dict[str, list[GridPoint]] = {}


def matrix_rows() -> list[MatrixRow]:
    """The full dataset × model × strategy run matrix, computed once."""
    global _MATRIX_CACHE
    if _MATRIX_CACHE is None:
        _MATRIX_CACHE = run_matrix(
            datasets=PAPER_DATASETS,
            models=PAPER_MODELS,
            strategies=PAPER_STRATEGIES,
            top_n=TOP_N_DEFAULT,
            max_candidates=MAX_CANDIDATES_DEFAULT,
            seed=0,
        )
    return _MATRIX_CACHE


def grid_points(strategy: str) -> list[GridPoint]:
    """The §4.3 hyperparameter grid on FB15K-237-like + TransE."""
    if strategy not in _GRID_CACHE:
        graph = load_dataset("fb15k237-like")
        model = get_trained_model("fb15k237-like", "transe", graph=graph)
        _GRID_CACHE[strategy] = hyperparameter_grid(
            model,
            graph,
            strategy=strategy,
            top_n_values=TOP_N_GRID,
            max_candidates_values=MAX_CANDIDATES_GRID,
            seed=0,
            stats=GraphStatistics(graph.train),
        )
    return _GRID_CACHE[strategy]


def save_and_print(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results/ and print it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
