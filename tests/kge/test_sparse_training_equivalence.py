"""Dense vs row-sparse training must produce bit-identical models.

The sparse fast path is an optimisation, not an approximation: for every
model × optimizer combination, training with ``sparse_grads="on"`` must
leave *every* parameter bitwise equal to the ``"off"`` run — including
under guard retries, lr decay with periodic evaluation, and the kvsall
regime where forcing the flag only exercises the densify round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.kge.training as training
from repro.kge import TrainConfig, train_model
from repro.kge.base import create_model
from repro.resilience import GuardConfig

#: Captured at import so repeated poison installs never double-wrap.
_REAL_EPOCH = training._negative_sampling_epoch

MODELS = ["transe", "distmult", "complex", "rescal", "conve"]

OPTIMIZERS = {
    "sgd": {"optimizer": "sgd"},
    "sgd-momentum": {"optimizer": "sgd", "momentum": 0.9},
    "adagrad": {"optimizer": "adagrad"},
    "adam": {"optimizer": "adam"},
}

#: Optimizers that defer row updates (and so exercise lazy catch-up).
LAZY = ["sgd-momentum", "adam"]


def _config(**overrides) -> TrainConfig:
    base = {
        "job": "negative_sampling",
        "loss": "margin",
        "epochs": 2,
        "batch_size": 64,
        "lr": 0.05,
        "num_negatives": 4,
        "seed": 3,
    }
    base.update(overrides)
    return TrainConfig(**base)


def _train(graph, model_name, sparse, guard=None, **overrides):
    model = create_model(
        model_name,
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=8,
        seed=1,
    )
    config = _config(sparse_grads="on" if sparse else "off", **overrides)
    train_model(model, graph, config, guard=guard)
    return model


def _assert_states_equal(a, b):
    state_a, state_b = a.state_dict(), b.state_dict()
    assert state_a.keys() == state_b.keys()
    for key in state_a:
        np.testing.assert_array_equal(state_a[key], state_b[key], err_msg=key)


class TestDenseSparseBitIdentity:
    @pytest.mark.parametrize("opt_name", sorted(OPTIMIZERS))
    @pytest.mark.parametrize("model_name", MODELS)
    def test_every_model_optimizer_combination(self, tiny_graph, model_name, opt_name):
        dense = _train(tiny_graph, model_name, sparse=False, **OPTIMIZERS[opt_name])
        sparse = _train(tiny_graph, model_name, sparse=True, **OPTIMIZERS[opt_name])
        _assert_states_equal(dense, sparse)

    def test_auto_equals_forced_on_for_negative_sampling(self, tiny_graph):
        auto = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
            seed=1,
        )
        train_model(auto, tiny_graph, _config(sparse_grads="auto"))
        assert auto.entity_embeddings.weight.sparse_grad
        forced = _train(tiny_graph, "distmult", sparse=True)
        _assert_states_equal(auto, forced)

    def test_auto_enables_lazy_optimizer_with_batch_hook(self, tiny_graph):
        # TransE's per-batch row renormalisation forces a flush per step,
        # leaving every stale row exactly one step behind — the lazy
        # optimizers replay that through the fused one-step kernel, so
        # auto keeps the fast path on for Adam and SGD+momentum too.
        def entity_flag(**overrides):
            model = create_model(
                "transe",
                num_entities=tiny_graph.num_entities,
                num_relations=tiny_graph.num_relations,
                dim=8,
                seed=1,
            )
            train_model(model, tiny_graph, _config(epochs=1, **overrides))
            return model.entity_embeddings.weight.sparse_grad

        assert entity_flag(sparse_grads="auto", optimizer="adam")
        assert entity_flag(sparse_grads="auto", optimizer="sgd", momentum=0.9)
        assert entity_flag(sparse_grads="auto", optimizer="adagrad")
        assert entity_flag(sparse_grads="auto", optimizer="sgd")
        assert not entity_flag(sparse_grads="off", optimizer="adam")

    def test_auto_stays_dense_for_kvsall(self, tiny_graph):
        model = create_model(
            "distmult",
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            dim=8,
            seed=1,
        )
        train_model(
            model, tiny_graph, _config(job="kvsall", loss="bce", sparse_grads="auto")
        )
        assert not model.entity_embeddings.weight.sparse_grad

    def test_lr_decay_and_periodic_eval_flush_correctly(self, tiny_graph):
        # lr must only change at a flushed boundary; periodic evaluation
        # reads the parameters mid-run.
        overrides = {"lr_decay": 0.9, "eval_every": 1, "epochs": 3, "optimizer": "adam"}
        dense = _train(tiny_graph, "distmult", sparse=False, **overrides)
        sparse = _train(tiny_graph, "distmult", sparse=True, **overrides)
        _assert_states_equal(dense, sparse)

    def test_kvsall_forced_sparse_takes_the_densify_path(self, tiny_graph):
        # kvsall entity gradients arrive dense through the all-entity
        # matmul and densify any sparse lookup contribution; forcing the
        # flag must still be a pure no-op on the result.
        overrides = {"job": "kvsall", "loss": "bce"}
        dense = _train(tiny_graph, "distmult", sparse=False, **overrides)
        sparse = _train(tiny_graph, "distmult", sparse=True, **overrides)
        _assert_states_equal(dense, sparse)


def _install_poison(monkeypatch, poison_calls):
    """Make specific negative-sampling epoch calls return NaN, forcing the
    guard's retry machinery through snapshot/restore of lazy optimizer
    state.  Counter is fresh per install; the wrapped epoch is always the
    real one captured at import."""
    calls = {"count": 0}

    def wrapper(model, graph, sampler, loss_fn, optimizer, config, rng,
                batch_flush=False):
        loss = _REAL_EPOCH(
            model, graph, sampler, loss_fn, optimizer, config, rng,
            batch_flush=batch_flush,
        )
        calls["count"] += 1
        if calls["count"] in poison_calls:
            return float("nan")
        return loss

    monkeypatch.setattr(training, "_negative_sampling_epoch", wrapper)


class TestGuardRetryEquivalence:
    @pytest.mark.parametrize("opt_name", LAZY)
    def test_retry_path_is_bit_identical_dense_vs_sparse(
        self, tiny_graph, monkeypatch, opt_name
    ):
        guard = GuardConfig(policy="retry", max_epoch_retries=2)
        overrides = dict(OPTIMIZERS[opt_name], epochs=3)

        _install_poison(monkeypatch, {2})
        dense = _train(tiny_graph, "distmult", sparse=False, guard=guard, **overrides)
        _install_poison(monkeypatch, {2})
        sparse = _train(tiny_graph, "distmult", sparse=True, guard=guard, **overrides)
        _assert_states_equal(dense, sparse)

    @pytest.mark.parametrize("opt_name", LAZY)
    def test_fault_free_guarded_equals_unguarded_sparse(
        self, tiny_graph, opt_name
    ):
        overrides = OPTIMIZERS[opt_name]
        unguarded = _train(tiny_graph, "transe", sparse=True, **overrides)
        guarded = _train(
            tiny_graph,
            "transe",
            sparse=True,
            guard=GuardConfig(policy="retry"),
            **overrides,
        )
        _assert_states_equal(unguarded, guarded)
