"""Mini package exercising re-exports, relative imports, and cycles.

``helper`` is deliberately imported but left out of ``__all__`` so the
whole-program scan reports exactly one RPR013 finding here.
"""

from .core import Engine, compute
from .util import helper

__all__ = ["Engine", "compute"]
