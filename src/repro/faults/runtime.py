"""Per-process fault-plan activation and the instrumented hook points.

Production code calls the module-level hooks (:func:`trigger`,
:func:`corrupt_file`, :func:`stall_seconds`, :func:`torn_append`) at
well-known *sites*; with no plan installed every hook is a near-free
early return.  Tests and the ``repro chaos`` driver install a
:class:`~repro.faults.FaultPlan` (usually via the :func:`inject`
context manager) to prove each recovery path.

Instrumented sites
------------------

===================  ====================================================
site                 token
===================  ====================================================
``train_epoch``      epoch index
``matrix_cell``      ``dataset/model/strategy``
``worker_dispatch``  cell key, fired inside the worker process
``shared_attach``    shared-memory segment name
``journal_append``   event name of the record being appended
``heartbeat_emit``   heartbeat slot index
any retry label      attempt index (via :func:`stall_seconds`)
``save``             every path published through ``atomic_write``
===================  ====================================================

Cross-process transport
-----------------------

Spawned workers inherit the parent's environment, so an active plan is
shipped as a JSON payload in :data:`FAULT_PLAN_ENV`
(:func:`export_to_env` / :func:`install_from_env`).  The scheduler sets
the variable for the lifetime of its pool and the pool initializer
installs from it, which makes every fault site live inside workers too.
Counters restart per process — see :mod:`repro.faults.plan`.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from .plan import FaultPlan

__all__ = [
    "FAULT_PLAN_ENV",
    "install",
    "clear",
    "active_plan",
    "inject",
    "trigger",
    "corrupt_file",
    "stall_seconds",
    "torn_append",
    "export_to_env",
    "install_from_env",
]

logger = logging.getLogger(__name__)

#: Environment variable carrying a serialized plan across spawn.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

_ACTIVE: FaultPlan | None = None


def install(plan: FaultPlan) -> None:
    """Activate a plan for this process (see :func:`inject` for scoping)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    """Deactivate any installed plan."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> FaultPlan | None:
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


@contextmanager
def export_to_env(plan: FaultPlan | None) -> Iterator[None]:
    """Publish ``plan`` in :data:`FAULT_PLAN_ENV` for child processes.

    A ``None`` plan is a no-op context.  The previous value is restored
    on exit, so nested schedulers and recovery passes (which must run
    fault-free) see exactly the transport state they expect.
    """
    if plan is None:
        yield
        return
    previous = os.environ.get(FAULT_PLAN_ENV)
    os.environ[FAULT_PLAN_ENV] = plan.to_payload()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULT_PLAN_ENV, None)
        else:
            os.environ[FAULT_PLAN_ENV] = previous


def install_from_env() -> FaultPlan | None:
    """Install the plan serialized in :data:`FAULT_PLAN_ENV`, if any.

    Called from worker bootstrap (pool initializers).  A process that
    already installed a plan keeps it — the environment never overrides
    an explicit :func:`install`.  A malformed payload is logged and
    ignored: fault injection must never take down a production worker.
    """
    global _ACTIVE
    payload = os.environ.get(FAULT_PLAN_ENV)
    if payload is None or _ACTIVE is not None:
        return _ACTIVE
    try:
        _ACTIVE = FaultPlan.from_payload(payload)
    except (ValueError, KeyError, TypeError) as error:
        logger.warning("ignoring malformed %s payload: %s", FAULT_PLAN_ENV, error)
        return None
    return _ACTIVE


def trigger(site: str, token: str = "") -> None:
    """Fire any scheduled fail / kill / wall-stall fault at this point."""
    if _ACTIVE is None:
        return
    token = str(token)
    fault = _ACTIVE._consume("kill", site, token)
    if fault is not None:
        logger.warning("injected kill at %s:%s (pid %d)", site, token, os.getpid())
        os.kill(os.getpid(), signal.SIGKILL)
    for fault in _ACTIVE.faults:
        # Virtual stalls belong to stall_seconds(); only wall stalls
        # sleep at the trigger site.
        if fault.wall and fault.matches("stall", site, token):
            fault.consume()
            logger.warning(
                "injected wall stall of %.2fs at %s:%s", fault.seconds, site, token
            )
            time.sleep(fault.seconds)
            break
    fault = _ACTIVE._consume("fail", site, token)
    if fault is not None:
        raise fault.exception()(f"injected fault at {site}:{token}")


def corrupt_file(path: Path | str) -> bool:
    """Damage ``path`` if the active plan scheduled save corruption."""
    if _ACTIVE is None:
        return False
    fault = _ACTIVE._consume("corrupt", "save", str(path))
    if fault is None:
        return False
    path = Path(path)
    data = bytearray(path.read_bytes())
    if fault.mode == "truncate":
        damaged = bytes(data[: max(len(data) // 3, 1)])
    else:
        middle = len(data) // 2
        for offset in range(middle, min(middle + 32, len(data))):
            data[offset] ^= 0xFF
        damaged = bytes(data)
    path.write_bytes(damaged)
    return True


def stall_seconds(site: str, token: str = "") -> float:
    """Virtual seconds an attempt at ``site`` should appear to take."""
    if _ACTIVE is None:
        return 0.0
    for fault in _ACTIVE.faults:
        if not fault.wall and fault.matches("stall", site, str(token)):
            fault.consume()
            return fault.seconds
    return 0.0


def torn_append(token: str = "") -> bool:
    """Should the next journal append be torn mid-write?

    The journal implements the tearing (half a record, no newline, then
    raise); this hook only consumes the scheduled fault.
    """
    if _ACTIVE is None:
        return False
    return _ACTIVE._consume("torn", "journal_append", str(token)) is not None
