"""A stdlib HTTP client for a running discovery server.

Speaks the same :mod:`repro.api.types` wire schema as the server;
non-2xx responses are decoded from the error envelope and re-raised as
the matching :class:`~repro.api.types.ApiError` subclass, so remote
callers see the exact taxonomy an in-process :class:`~repro.api.Session`
raises.  The ``repro query`` CLI subcommand is a thin wrapper over this.
"""

from __future__ import annotations

import json
from typing import Any, Mapping
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from ..api.types import (
    ApiError,
    BadRequestError,
    ClassifyRequest,
    ClassifyResponse,
    DeadlineError,
    DiscoverRequest,
    DiscoverResponse,
    HealthResponse,
    ModelNotFoundError,
    ModelsResponse,
    NotFoundError,
    RankRequest,
    RankResponse,
    encode_payload,
)

__all__ = ["ServeClient", "ServeClientError", "error_from_envelope"]

_ERRORS_BY_CODE: Mapping[str, type[ApiError]] = {
    "bad_request": BadRequestError,
    "not_found": NotFoundError,
    "model_not_found": ModelNotFoundError,
    "deadline_exceeded": DeadlineError,
    "internal": ApiError,
}


class ServeClientError(ApiError):
    """Transport-level failure: unreachable server, non-JSON reply."""

    code = "transport"


def error_from_envelope(payload: Mapping[str, Any]) -> ApiError:
    """Rebuild the typed error a server serialised into its envelope."""
    detail = payload.get("error")
    if not isinstance(detail, Mapping):
        return ServeClientError(f"malformed error envelope: {payload!r}")
    error_cls = _ERRORS_BY_CODE.get(str(detail.get("code")), ApiError)
    return error_cls(str(detail.get("message", "unknown server error")))


class ServeClient:
    """Typed requests against ``http://host:port`` (see :class:`ServeApp`)."""

    def __init__(self, base_url: str, timeout_seconds: float = 30.0) -> None:
        self._base_url = base_url.rstrip("/")
        self._timeout_seconds = timeout_seconds

    def _exchange(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> bytes:
        data = encode_payload(payload) if payload is not None else None
        request = Request(
            self._base_url + path,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urlopen(request, timeout=self._timeout_seconds) as response:
                return response.read()
        except HTTPError as error:
            body = error.read()
            try:
                envelope = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise ServeClientError(
                    f"HTTP {error.code} with non-JSON body from {path}"
                ) from None
            raise error_from_envelope(envelope) from None
        except URLError as error:
            raise ServeClientError(
                f"cannot reach {self._base_url}: {error.reason}"
            ) from None

    def _json(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        body = self._exchange(method, path, payload)
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeClientError(f"non-JSON response from {path}: {error}") from None
        if not isinstance(decoded, dict):
            raise ServeClientError(f"unexpected response shape from {path}")
        return decoded

    # -- typed endpoints ----------------------------------------------

    def health(self) -> HealthResponse:
        return HealthResponse.from_dict(self._json("GET", "/healthz"))

    def models(self) -> ModelsResponse:
        return ModelsResponse.from_dict(self._json("GET", "/v1/models"))

    def metrics(self) -> str:
        return self._exchange("GET", "/metrics").decode("utf-8")

    def rank(self, request: RankRequest) -> RankResponse:
        return RankResponse.from_dict(
            self._json("POST", "/v1/rank", request.to_dict())
        )

    def discover(self, request: DiscoverRequest) -> DiscoverResponse:
        return DiscoverResponse.from_dict(
            self._json("POST", "/v1/discover", request.to_dict())
        )

    def classify(self, request: ClassifyRequest) -> ClassifyResponse:
        return ClassifyResponse.from_dict(
            self._json("POST", "/v1/classify", request.to_dict())
        )

    def post(self, endpoint: str, payload: Mapping[str, Any]) -> dict[str, Any]:
        """Raw dispatch for scripting: ``POST /v1/<endpoint>`` with a dict."""
        return self._json("POST", f"/v1/{endpoint}", payload)
