"""Using your own knowledge graph: TSV load → hygiene → train → discover.

Shows the workflow a downstream user follows with a custom dataset:

1. write/load a dataset directory of ``train.txt``/``valid.txt``/
   ``test.txt`` TSV files,
2. run the structural report and check for inverse-relation test leakage
   (the flaw that forced FB15K → FB15K-237, paper §4.1.2) — and repair it,
3. train a model and discover facts on the cleaned graph.

The demo KG is written to a temp directory first so the example is fully
self-contained.

Usage::

    python examples/custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import discover_facts, fit
from repro.kg import (
    KGProfile,
    dataset_report,
    detect_inverse_leakage,
    generate_kg,
    load_dataset_dir,
    remove_inverse_leakage,
    save_dataset_dir,
)
from repro.kge import ModelConfig, TrainConfig


def write_demo_dataset(directory: Path) -> None:
    """A synthetic KG with a deliberately planted inverse relation."""
    graph = generate_kg(
        KGProfile(
            name="demo", num_entities=150, num_relations=6, num_triples=1800,
            num_types=5, seed=42,
        )
    )
    # Plant the leak: add relation 5 as the exact inverse of relation 0.
    train = graph.train.array.copy()
    rel0 = train[train[:, 1] == 0]
    planted = rel0[:, [2, 1, 0]].copy()
    planted[:, 1] = 5
    from repro.kg import KnowledgeGraph

    leaky = KnowledgeGraph.from_arrays(
        name="demo-leaky",
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        train=np.concatenate([train, planted]),
        valid=graph.valid.array,
        test=graph.test.array,
        entity_labels=graph.entities.labels,
        relation_labels=graph.relations.labels,
    )
    save_dataset_dir(leaky, directory)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "my_kg"
        write_demo_dataset(directory)

        print(f"1) loading dataset directory {directory.name}/ ...")
        graph = load_dataset_dir(directory)
        report = dataset_report(graph)
        print(
            f"   {report['entities']} entities, {report['relations']} relations, "
            f"{report['train']} training triples, "
            f"avg clustering {report['average_clustering']:.3f}"
        )

        print("2) checking for inverse-relation test leakage...")
        leaks = detect_inverse_leakage(graph, threshold=0.8)
        for leak in leaks:
            if leak.relation != leak.inverse:
                print(
                    f"   LEAK: {graph.relations.label_of(leak.relation)} is "
                    f"{leak.overlap:.0%} the inverse of "
                    f"{graph.relations.label_of(leak.inverse)}"
                )
        cleaned, _ = remove_inverse_leakage(graph, threshold=0.8)
        print(
            f"   repaired: {graph.num_relations} relations -> "
            f"{len(cleaned.train.unique_relations())} with triples"
        )

        print("3) training DistMult on the cleaned graph...")
        result = fit(
            cleaned,
            ModelConfig("distmult", dim=32, seed=0),
            TrainConfig(
                job="kvsall", loss="bce", epochs=50, batch_size=128, lr=0.05,
                label_smoothing=0.1,
            ),
        )
        print(f"   final loss {result.losses[-1]:.4f}")

        print("4) discovering facts...")
        discovery = discover_facts(
            result.model, cleaned, strategy="entity_frequency",
            top_n=30, max_candidates=400, seed=0,
        )
        print(
            f"   {discovery.num_facts} facts (MRR {discovery.mrr():.3f}); "
            "top five:"
        )
        order = np.argsort(discovery.ranks)[:5]
        for idx in order:
            s, r, o = cleaned.label_triple(tuple(discovery.facts[idx]))
            print(f"   rank {discovery.ranks[idx]:3.0f}  ({s}, {r}, {o})")


if __name__ == "__main__":
    main()
