"""Query-deduplicated batched ranking — the discovery hot path.

Algorithm 1 ranks mesh-grid candidates, and a mesh of ``sample_size``
subjects × ``sample_size`` objects shares only ``sample_size`` unique
``(s, r)`` queries: every candidate in a mesh row is a corruption of the
*same* 1-vs-all score row.  The legacy protocol
(:func:`repro.kge.evaluation.compute_ranks_reference`) nevertheless
computes a full ``(B, num_entities)`` score matrix with one row *per
candidate*, recomputing each shared row ~``sample_size`` times — exactly
the ranking cost the paper's efficiency (facts/hour) metric measures.

:class:`RankingEngine` removes that redundancy:

* **query dedup** — candidates are grouped by unique ``(s, r)`` (or
  ``(r, o)``) query; each unique query is scored once via
  ``scores_sp``/``scores_po`` and every candidate sharing it is ranked
  against the single row with sorted-row rank arithmetic;
* **grouped filtering** — the filtered protocol (Bordes et al., 2013) is
  served by :class:`GroupedFilter`, a CSR-style flat index built without
  Python loops, instead of the legacy per-row dict lookup + masking;
* **score-row cache** — an optional bounded LRU (:class:`ScoreRowCache`)
  keyed by ``(model, side, s, r)`` lets repeated generation iterations
  and anytime/protocol re-ranking reuse rows across calls;
* **workers** — an opt-in thread pool scores independent query chunks
  concurrently (numpy's BLAS releases the GIL in the matmul-heavy
  models); results are assembled in deterministic order.

Ranks are bit-identical to the reference implementation: the tie-averaged
rank only needs the counts of strictly-greater and equal scores, and both
paths obtain them from exact float comparisons against the same row.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, fields
from threading import Lock

import numpy as np

from ..autograd import no_grad
from ..kg.triples import TripleSet
from ..obs import ReportableMixin, get_registry, span

__all__ = [
    "GroupedFilter",
    "RankingEngine",
    "RankingStats",
    "RANKING_STATS_ALIASES",
    "ScoreRowCache",
]

_SIDES = ("object", "subject")


class GroupedFilter:
    """CSR-style map from a ranking query to its known true entities.

    Equivalent to :meth:`TripleSet.sp_index` / :meth:`TripleSet.po_index`
    but built without Python loops: the triples are lexsorted by
    ``(query_key, entity)``, so each query's known entities form one
    contiguous **ascending** slice of a single flat array — ready for
    vectorised ``searchsorted`` membership and score-count queries.
    """

    def __init__(self, triples: TripleSet, side: str) -> None:
        if side not in _SIDES:
            raise ValueError(f"side must be one of {_SIDES}, got {side!r}")
        arr = triples.array
        if side == "object":
            keys = arr[:, 0] * np.int64(triples.num_relations) + arr[:, 1]
            entities = arr[:, 2]
        else:
            keys = arr[:, 1] * np.int64(triples.num_entities) + arr[:, 2]
            entities = arr[:, 0]
        order = np.lexsort((entities, keys))
        self.side = side
        self.num_entities = triples.num_entities
        self.num_relations = triples.num_relations
        self._keys = keys[order]
        self._entities = entities[order]

    @property
    def entities(self) -> np.ndarray:
        """Flat known-entity array; index it with :meth:`segments` bounds."""
        return self._entities

    def query_keys(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Scalar keys of ``(s, r)`` (object side) / ``(r, o)`` queries."""
        radix = self.num_relations if self.side == "object" else self.num_entities
        return a * np.int64(radix) + b

    def segments(self, query_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(starts, stops)`` slice bounds into :attr:`entities` per query."""
        starts = np.searchsorted(self._keys, query_keys, side="left")
        stops = np.searchsorted(self._keys, query_keys, side="right")
        return starts, stops


class ScoreRowCache:
    """Thread-safe bounded LRU of 1-vs-all score rows.

    Keys are ``(model_key, side, a, b)`` tuples; values are
    ``(row, sorted_row)`` pairs so reuse also skips the re-sort.  The
    model key is ``id(model)``, which is only meaningful while the model
    is frozen — training updates embeddings in place and would make
    cached rows stale, so engines with a cache must not be shared across
    optimizer steps (call :meth:`clear` after any parameter update).
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._rows: OrderedDict[tuple, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._lock = Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)

    def get(self, key: tuple) -> tuple[np.ndarray, np.ndarray] | None:
        with self._lock:
            value = self._rows.get(key)
            if value is not None:
                self._rows.move_to_end(key)
            return value

    def put(self, key: tuple, value: tuple[np.ndarray, np.ndarray]) -> None:
        with self._lock:
            self._rows[key] = value
            self._rows.move_to_end(key)
            while len(self._rows) > self.maxsize:
                self._rows.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._rows.clear()


#: Legacy ``RankingStats`` field names → canonical ``*_count`` summary keys
#: (the ``*_seconds`` fields were already canonically named).
RANKING_STATS_ALIASES = {
    "candidates_ranked": "candidates_ranked_count",
    "unique_queries": "unique_queries_count",
    "rows_scored": "rows_scored_count",
    "rows_reused": "rows_reused_count",
    "cache_hits": "cache_hits_count",
}


@dataclass
class RankingStats(ReportableMixin):
    """Cumulative instrumentation counters of a :class:`RankingEngine`.

    ``rows_scored`` counts 1-vs-all rows actually computed by the model;
    ``rows_reused`` counts candidates served without a fresh model call
    (query dedup within a call plus cache hits across calls);
    ``cache_hits`` counts unique queries answered from the cache.
    ``score_seconds`` covers model scoring only; ``filter_seconds``
    covers building the grouped filter and its segment lookups.
    """

    candidates_ranked: int = 0
    unique_queries: int = 0
    rows_scored: int = 0
    rows_reused: int = 0
    cache_hits: int = 0
    score_seconds: float = 0.0
    filter_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "RankingStats") -> None:
        """Add another stats object's counters into this one."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def summary(self) -> dict[str, float]:
        """Counters under canonical ``*_count``/``*_seconds`` names.

        The raw field names completed their deprecation cycle as lookup
        aliases; use :meth:`as_dict` for the field-named payload.
        """
        return {
            RANKING_STATS_ALIASES.get(f.name, f.name): getattr(self, f.name)
            for f in fields(self)
        }

    def to_dict(self) -> dict[str, float]:
        """Field-named payload — the shape :meth:`from_dict` reconstructs."""
        return self.as_dict()

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "RankingStats":
        """Rebuild from :meth:`to_dict` output (canonical keys also accepted)."""
        canonical_to_field = {v: k for k, v in RANKING_STATS_ALIASES.items()}
        kwargs = {canonical_to_field.get(key, key): value for key, value in data.items()}
        unknown = set(kwargs) - {f.name for f in fields(cls)}
        if unknown:
            raise ValueError(f"unknown RankingStats keys: {sorted(unknown)}")
        return cls(**kwargs)


class RankingEngine:
    """Deduplicated, cached, optionally threaded 1-vs-all ranking.

    Parameters
    ----------
    cache_size:
        Rows kept in the LRU score cache; ``0`` disables caching.  Each
        row costs ``2 · num_entities`` float64s (raw + sorted).
    workers:
        Thread-pool width for scoring independent query chunks.  ``1``
        (the default) stays single-threaded; results are bit-identical
        either way because chunks are assembled in deterministic order.
    chunk_size:
        Unique queries scored per vectorised model call, bounding peak
        memory at ``O(chunk_size · num_entities)``.
    """

    def __init__(
        self, cache_size: int = 0, workers: int = 1, chunk_size: int = 512
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.cache = ScoreRowCache(cache_size) if cache_size else None
        self.workers = workers
        self.chunk_size = chunk_size
        self.stats = RankingStats()
        # One engine may serve concurrent compute_ranks calls (and the
        # pool path runs accounting on the consumer thread); the locks
        # keep the counters and the filter LRU coherent.
        self._stats_lock = Lock()
        self._filters: OrderedDict[tuple[int, str], GroupedFilter] = OrderedDict()
        self._filter_refs: dict[int, TripleSet] = {}
        self._filters_lock = Lock()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero the cumulative counters (the cache is left intact)."""
        with self._stats_lock:
            self.stats = RankingStats()

    def compute_ranks(
        self,
        model,
        triples: np.ndarray,
        filter_triples: TripleSet | None = None,
        side: str = "object",
    ) -> np.ndarray:
        """Tie-averaged ranks, bit-identical to the reference protocol.

        See :func:`repro.kge.evaluation.compute_ranks` for the parameter
        contract; this entry point additionally deduplicates queries,
        consults the row cache, and may fan scoring out to threads.
        """
        if side not in _SIDES:
            raise ValueError(f"side must be one of {_SIDES}, got {side!r}")
        triples = np.asarray(triples, dtype=np.int64)
        if triples.size == 0:
            return np.zeros(0)
        with no_grad():
            return self._compute(model, triples, filter_triples, side)

    # ------------------------------------------------------------------
    # Core
    # ------------------------------------------------------------------
    def _compute(
        self,
        model,
        triples: np.ndarray,
        filter_triples: TripleSet | None,
        side: str,
    ) -> np.ndarray:
        if side == "object":
            a, b, targets = triples[:, 0], triples[:, 1], triples[:, 2]
            radix = getattr(model, "num_relations", None)
        else:
            a, b, targets = triples[:, 1], triples[:, 2], triples[:, 0]
            radix = getattr(model, "num_entities", None)
        # Scripted test doubles may lack the id-space attributes; any
        # radix beyond the observed ids keeps the key encoding injective.
        if radix is None:
            radix = int(b.max()) + 1

        qkeys = a * np.int64(radix) + b
        unique_keys, first, inverse = np.unique(
            qkeys, return_index=True, return_inverse=True
        )
        num_unique = len(unique_keys)
        ua, ub = a[first], b[first]

        # Candidates grouped by query: order[bounds[u]:bounds[u+1]] are
        # the positions of query u's candidates in the input.
        order = np.argsort(inverse, kind="stable")
        sorted_inverse = inverse[order]
        bounds = np.searchsorted(sorted_inverse, np.arange(num_unique + 1))

        with self._stats_lock:
            self.stats.candidates_ranked += len(triples)
            self.stats.unique_queries += num_unique

        starts = stops = known_flat = None
        if filter_triples is not None:
            with span("rank.filter") as filter_span:
                grouped = self._grouped_filter(filter_triples, side)
                starts, stops = grouped.segments(grouped.query_keys(ua, ub))
                known_flat = grouped.entities
            with self._stats_lock:
                self.stats.filter_seconds += filter_span.wall_seconds

        ranks = np.zeros(len(triples))
        scored_before = self.stats.rows_scored
        hits_before = self.stats.cache_hits
        chunks = [
            (lo, min(lo + self.chunk_size, num_unique))
            for lo in range(0, num_unique, self.chunk_size)
        ]
        for lo, hi, rows, sorted_rows in self._iter_row_chunks(
            model, side, ua, ub, chunks
        ):
            for u in range(lo, hi):
                row = rows[u - lo]
                sorted_row = sorted_rows[u - lo]
                cand = order[bounds[u] : bounds[u + 1]]
                target_ids = targets[cand]
                target_scores = row[target_ids]
                pos_right = np.searchsorted(sorted_row, target_scores, side="right")
                pos_left = np.searchsorted(sorted_row, target_scores, side="left")
                greater = len(sorted_row) - pos_right
                equal = pos_right - pos_left
                if known_flat is not None:
                    known = known_flat[starts[u] : stops[u]]
                    if len(known):
                        known_scores = np.sort(row[known])
                        k_right = np.searchsorted(
                            known_scores, target_scores, side="right"
                        )
                        k_left = np.searchsorted(
                            known_scores, target_scores, side="left"
                        )
                        # ``known`` is ascending (lexsort order), so the
                        # target-membership test is a searchsorted probe.
                        probe = np.searchsorted(known, target_ids)
                        probe = np.minimum(probe, len(known) - 1)
                        is_known = known[probe] == target_ids
                        # Masking known entities to -inf removes them from
                        # both counts; the target's own row entry equals
                        # its score, so only the equal count needs the
                        # restore correction.
                        greater = greater - (len(known) - k_right)
                        equal = equal - (k_right - k_left) + is_known
                ranks[cand] = greater + (equal - 1) / 2.0 + 1.0
        # Candidates served without a fresh model call: query dedup
        # within this call plus cache hits carried over from earlier ones.
        with self._stats_lock:
            scored_delta = self.stats.rows_scored - scored_before
            hits_delta = self.stats.cache_hits - hits_before
            reused = len(triples) - scored_delta
            self.stats.rows_reused += reused
        registry = get_registry()
        if registry.enabled:
            registry.counter("rank.candidates_ranked_count").inc(len(triples))
            registry.counter("rank.unique_queries_count").inc(num_unique)
            registry.counter("rank.rows_scored_count").inc(scored_delta)
            registry.counter("rank.cache_hits_count").inc(hits_delta)
            registry.counter("rank.rows_reused_count").inc(reused)
        return ranks

    # ------------------------------------------------------------------
    # Row production: cache + chunked scoring + optional thread pool
    # ------------------------------------------------------------------
    def _load_chunk(
        self, model, side: str, ua: np.ndarray, ub: np.ndarray, lo: int, hi: int
    ) -> tuple[np.ndarray, np.ndarray, int, int, float]:
        """Score rows for unique queries ``[lo, hi)``, consulting the cache.

        Returns ``(rows, sorted_rows, scored, hits, seconds)``; safe to
        call from worker threads (the cache is locked, counters are
        returned to the caller rather than mutated here).
        """
        size = hi - lo
        rows: list[np.ndarray | None] = [None] * size
        sorted_rows: list[np.ndarray | None] = [None] * size
        missing: list[int] = []
        if self.cache is not None:
            for i in range(size):
                key = (id(model), side, int(ua[lo + i]), int(ub[lo + i]))
                hit = self.cache.get(key)
                if hit is not None:
                    rows[i], sorted_rows[i] = hit
                else:
                    missing.append(i)
        else:
            missing = list(range(size))

        seconds = 0.0
        if missing:
            idx = np.asarray(missing, dtype=np.int64)
            # A span rather than a raw clock: on worker threads the span
            # roots its own subtree instead of nesting under ``rank``.
            with span("rank.score") as score_span:
                with no_grad():
                    if side == "object":
                        scored = model.scores_sp(ua[lo + idx], ub[lo + idx])
                    else:
                        scored = model.scores_po(ua[lo + idx], ub[lo + idx])
            seconds = score_span.wall_seconds
            scored = np.asarray(scored)
            scored_sorted = np.sort(scored, axis=1)
            for j, i in enumerate(missing):
                rows[i] = scored[j]
                sorted_rows[i] = scored_sorted[j]
                if self.cache is not None:
                    key = (id(model), side, int(ua[lo + i]), int(ub[lo + i]))
                    self.cache.put(key, (scored[j], scored_sorted[j]))
        hits = size - len(missing)
        return np.stack(rows), np.stack(sorted_rows), len(missing), hits, seconds

    def _iter_row_chunks(self, model, side, ua, ub, chunks):
        """Yield ``(lo, hi, rows, sorted_rows)`` in deterministic order."""

        def account(lo, hi, loaded):
            rows, sorted_rows, scored, hits, seconds = loaded
            with self._stats_lock:
                self.stats.rows_scored += scored
                self.stats.cache_hits += hits
                self.stats.score_seconds += seconds
            return lo, hi, rows, sorted_rows

        if self.workers == 1 or len(chunks) <= 1:
            for lo, hi in chunks:
                yield account(lo, hi, self._load_chunk(model, side, ua, ub, lo, hi))
            return

        # Bounded look-ahead: at most ~2× workers chunks in flight so a
        # long call never materialises every row at once.
        window = self.workers * 2
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            pending: deque = deque()
            chunk_iter = iter(chunks)
            for lo, hi in chunk_iter:
                pending.append(
                    (lo, hi, pool.submit(self._load_chunk, model, side, ua, ub, lo, hi))
                )
                if len(pending) >= window:
                    break
            while pending:
                lo, hi, future = pending.popleft()
                yield account(lo, hi, future.result())
                for nlo, nhi in chunk_iter:
                    pending.append(
                        (
                            nlo,
                            nhi,
                            pool.submit(
                                self._load_chunk, model, side, ua, ub, nlo, nhi
                            ),
                        )
                    )
                    break

    # ------------------------------------------------------------------
    # Grouped-filter cache
    # ------------------------------------------------------------------
    def _grouped_filter(self, triples: TripleSet, side: str) -> GroupedFilter:
        """Build (or reuse) the grouped filter for an immutable TripleSet.

        Keyed by identity — TripleSets are immutable, and the strong
        reference kept here prevents id reuse while the entry lives.
        """
        key = (id(triples), side)
        with self._filters_lock:
            cached = self._filters.get(key)
            if cached is not None:
                self._filters.move_to_end(key)
                return cached
        # Build outside the lock — index construction is the slow part —
        # and re-check on insert in case a concurrent call won the race.
        grouped = GroupedFilter(triples, side)
        with self._filters_lock:
            existing = self._filters.get(key)
            if existing is not None:
                self._filters.move_to_end(key)
                return existing
            self._filters[key] = grouped
            self._filter_refs[id(triples)] = triples
            while len(self._filters) > 8:
                (old_id, _), _ = self._filters.popitem(last=False)
                if not any(fid == old_id for fid, _ in self._filters):
                    self._filter_refs.pop(old_id, None)
        return grouped
