"""Module-level worker entry points for the campaign fabric.

Everything the :class:`~repro.parallel.scheduler.ParallelScheduler`
dispatches lives here as a plain module-level function (spawn workers
pickle callables by qualified name — lint rule RPR015 rejects closures
and lambdas at fabric call sites).  Heavyweight inputs arrive once per
worker process through the scheduler ``context``; per-process caches
below keep graphs loaded, shared-memory models attached and ranking
engines warm across the cells one worker executes.  The caches need no
invalidation: every pool spawns fresh processes, so their lifetime is
exactly one scheduler pool.

Imports of the experiment layers happen inside the worker functions —
this module is imported by :mod:`repro.experiments.runner` (through
``repro.parallel``) and must not import it back at module scope.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..resilience import FaultPlan, spawn_stream
from ..resilience import faults
from .shared import ModelHandle, attach_model

__all__ = [
    "MatrixContext",
    "DiscoveryContext",
    "GridContext",
    "matrix_cell_worker",
    "discover_relation_worker",
    "grid_point_worker",
]

#: segment name -> (model, SharedMemory) attachments for this process.
_MODELS: dict = {}
#: dataset name -> loaded KnowledgeGraph.
_GRAPHS: dict = {}
#: cache key -> GraphStatistics.
_STATS: dict = {}
#: (cache_size, workers) -> RankingEngine.
_ENGINES: dict = {}
_FAULTS_INSTALLED = False


def _attached(handle: ModelHandle):
    """Attach (once per process) and return the shared-memory model."""
    entry = _MODELS.get(handle.segment)
    if entry is None:
        entry = _MODELS[handle.segment] = attach_model(handle)
    return entry[0]


def _dataset_graph(name: str):
    graph = _GRAPHS.get(name)
    if graph is None:
        if name.startswith("store:"):
            # Out-of-core datasets: re-attach the mmap-backed KG store.
            # The triple columns stay on disk and are shared through the
            # page cache, so N workers cost one copy of the data.
            from ..kg.io import load_kg_store

            graph = load_kg_store(name[len("store:") :])
        else:
            from ..kg.datasets import load_dataset

            graph = load_dataset(name)
        _GRAPHS[name] = graph
    return graph


def _engine(cache_size: int, workers: int):
    key = (cache_size, workers)
    engine = _ENGINES.get(key)
    if engine is None:
        from ..kge.ranking import RankingEngine

        engine = _ENGINES[key] = RankingEngine(cache_size=cache_size, workers=workers)
    return engine


def _install_fault_plan(plan: FaultPlan | None) -> None:
    """Mirror the parent's fault plan into this worker (tests only).

    Fault counters are per-process: a plan that fails the first N
    matching triggers fails the first N *in each worker*, which is what
    parallel fault tests must account for.
    """
    global _FAULTS_INSTALLED
    if plan is not None and not _FAULTS_INSTALLED:
        faults.install(plan)
        _FAULTS_INSTALLED = True


# -- run_matrix cells -----------------------------------------------------


@dataclass(frozen=True)
class MatrixContext:
    """Per-pool inputs for matrix cells (everything but the cell triple)."""

    handles: dict  # (dataset, model) -> ModelHandle
    top_n: int
    max_candidates: int
    seed: int
    share_statistics: bool
    fault_plan: FaultPlan | None = None


def matrix_cell_worker(context: MatrixContext, payload, rng):
    """One ``dataset/model/strategy`` cell; returns a MatrixRow dict.

    The discovery seed comes from ``context.seed`` (identical for every
    cell, exactly as the serial runner passes one campaign seed to each
    ``discover_facts`` call) — the scheduler's per-cell ``rng`` stream is
    deliberately unused here so results stay bit-identical to serial.
    """
    dataset, model_name, strategy, test_mrr = payload
    _install_fault_plan(context.fault_plan)
    faults.trigger("matrix_cell", f"{dataset}/{model_name}/{strategy}")

    from ..discovery.discover import discover_facts
    from ..experiments.runner import MatrixRow
    from ..kg.stats import GraphStatistics

    graph = _dataset_graph(dataset)
    model = _attached(context.handles[(dataset, model_name)])
    if context.share_statistics:
        stats = _STATS.get(dataset)
        if stats is None:
            stats = _STATS[dataset] = GraphStatistics(graph.train)
    else:
        stats = GraphStatistics(graph.train)
    result = discover_facts(
        model,
        graph,
        strategy=strategy,
        top_n=context.top_n,
        max_candidates=context.max_candidates,
        seed=context.seed,
        stats=stats,
    )
    return MatrixRow.from_result(dataset, model_name, result, test_mrr).to_dict()


# -- per-relation discovery -----------------------------------------------


@dataclass(frozen=True)
class DiscoveryContext:
    """Per-pool inputs for relation cells of one ``discover_facts`` run."""

    handle: ModelHandle
    graph: object
    strategy: object  # prepared SamplingStrategy
    seed: int
    top_n: int
    max_candidates: int
    sample_size: int
    drop_self_loops: bool
    rule_filter: object
    workers: int
    cache_size: int


def discover_relation_worker(context: DiscoveryContext, relation: int, rng):
    """Algorithm 1's inner loop for one relation, in a worker process.

    Re-seeds via ``spawn_stream(seed, relation)`` — the same per-relation
    stream construction the serial loop uses, so which worker runs which
    relation (and in what order) cannot change the result.
    """
    from ..discovery.discover import discover_relation

    model = _attached(context.handle)
    engine = _engine(context.cache_size, context.workers)
    before = engine.stats.as_dict()
    outcome = discover_relation(
        model,
        context.graph.train,
        context.strategy,
        relation,
        spawn_stream(context.seed, relation),
        top_n=context.top_n,
        max_candidates=context.max_candidates,
        sample_size=context.sample_size,
        drop_self_loops=context.drop_self_loops,
        rule_filter=context.rule_filter,
        engine=engine,
    )
    after = engine.stats.as_dict()
    return {
        "outcome": outcome,
        "ranking_stats": {key: after[key] - before.get(key, 0) for key in after},
    }


# -- hyperparameter grid points -------------------------------------------


@dataclass(frozen=True)
class GridContext:
    """Per-pool inputs for one hyperparameter grid sweep."""

    handle: ModelHandle
    graph: object
    strategy: str
    seed: int


def grid_point_worker(context: GridContext, payload, rng):
    """One (top_n, max_candidates) grid point; returns a GridPoint dict.

    Graph statistics are computed once per worker process and shared
    across its points — deterministic, so numerically indistinguishable
    from the serial sweep's single shared ``GraphStatistics``.
    """
    top_n, max_candidates = payload

    from ..discovery.discover import discover_facts
    from ..experiments.gridsearch import GridPoint
    from ..kg.stats import GraphStatistics

    model = _attached(context.handle)
    stats = _STATS.get("__grid__")
    if stats is None:
        stats = _STATS["__grid__"] = GraphStatistics(context.graph.train)
    result = discover_facts(
        model,
        context.graph,
        strategy=context.strategy,
        top_n=top_n,
        max_candidates=max_candidates,
        seed=context.seed,
        stats=stats,
    )
    return GridPoint(
        strategy=result.strategy,
        top_n=top_n,
        max_candidates=max_candidates,
        num_facts=result.num_facts,
        mrr=result.mrr(),
        runtime_seconds=result.runtime_seconds,
        efficiency_facts_per_hour=result.efficiency_facts_per_hour(),
    ).to_dict()
