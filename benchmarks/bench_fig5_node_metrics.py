"""Figure 5 — per-node triangles vs clustering coefficient on FB15K-237
(paper §4.2.2).

The paper's argument: a node's clustering coefficient fluctuates largely
independently of its triangle count, which is why CLUSTERING COEFFICIENT
fails to track popularity while CLUSTERING TRIANGLES succeeds.  We print
summary statistics of both per-node metrics and their rank correlations
with node degree.
"""

from __future__ import annotations

import numpy as np
from common import save_and_print
from scipy import stats as scipy_stats

from repro.experiments import format_table
from repro.kg import GraphStatistics, load_dataset


def test_fig5_node_metrics(benchmark):
    graph = load_dataset("fb15k237-like")

    def compute():
        stats = GraphStatistics(graph.train, backend="sparse")
        return stats.triangles, stats.clustering_coefficient, stats.degree

    triangles, coefficient, degree = benchmark.pedantic(
        compute, rounds=3, iterations=1
    )

    def describe(name: str, values: np.ndarray) -> dict:
        return {
            "metric": name,
            "min": float(values.min()),
            "median": float(np.median(values)),
            "mean": float(values.mean()),
            "max": float(values.max()),
        }

    tri_degree = scipy_stats.spearmanr(triangles, degree).statistic
    coeff_degree = scipy_stats.spearmanr(coefficient, degree).statistic
    tri_coeff = scipy_stats.spearmanr(triangles, coefficient).statistic

    text = (
        format_table(
            [describe("triangles T(v)", triangles.astype(float)),
             describe("clustering c(v)", coefficient)],
            title="Figure 5 — per-node metric distributions on fb15k237-like",
        )
        + "\n\n"
        + format_table(
            [
                {"pair": "triangles vs degree", "spearman": round(float(tri_degree), 3)},
                {"pair": "clustering vs degree", "spearman": round(float(coeff_degree), 3)},
                {"pair": "triangles vs clustering", "spearman": round(float(tri_coeff), 3)},
            ],
            title="Figure 5 — rank correlations (popularity alignment)",
        )
    )
    save_and_print("fig5_node_metrics", text)

    # The paper's core observation: triangle counts track popularity
    # (degree) far better than the clustering coefficient does.
    assert tri_degree > coeff_degree + 0.2
    assert tri_degree > 0.8
