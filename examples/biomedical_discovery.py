"""Biomedical fact discovery — the paper's motivating scenario (§1).

A biomedical scientist has a knowledge graph of drugs, proteins and
diseases but no specific queries: the goal is to surface *new* plausible
(drug, treats, disease) relationships without any test data.  This
example builds a synthetic biomedical KG with that structure, trains a
ComplEx model, and uses fact discovery restricted to the ``treats``
relation to produce a ranked list of drug-repurposing candidates.

Usage::

    python examples/biomedical_discovery.py
"""

from __future__ import annotations

import numpy as np

from repro import discover_facts, evaluate_ranking, fit
from repro.kg import KnowledgeGraph
from repro.kge import ModelConfig, TrainConfig

N_DRUGS, N_PROTEINS, N_DISEASES = 60, 80, 50
RELATIONS = ["treats", "targets", "associated_with", "interacts_with"]


def build_biomedical_kg(seed: int = 0) -> KnowledgeGraph:
    """A drug–protein–disease KG with latent mechanism structure.

    Ground truth: each protein belongs to a pathway; drugs target
    proteins, pathways drive diseases, and a drug treats a disease when
    it targets a protein on the disease's pathway.  The *treats* edges we
    train on are a random subset of that ground truth — discovery should
    surface the held-out remainder.
    """
    rng = np.random.default_rng(seed)
    drugs = [f"drug:{i}" for i in range(N_DRUGS)]
    proteins = [f"protein:{i}" for i in range(N_PROTEINS)]
    diseases = [f"disease:{i}" for i in range(N_DISEASES)]
    entities = drugs + proteins + diseases
    drug_ids = np.arange(N_DRUGS)
    protein_ids = np.arange(N_DRUGS, N_DRUGS + N_PROTEINS)
    disease_ids = np.arange(N_DRUGS + N_PROTEINS, len(entities))

    n_pathways = 8
    pathway_of_protein = rng.integers(0, n_pathways, N_PROTEINS)
    pathway_of_disease = rng.integers(0, n_pathways, N_DISEASES)

    triples: list[tuple[int, int, int]] = []
    # Drugs target 1–4 proteins each.
    targets_of_drug: dict[int, np.ndarray] = {}
    for d in range(N_DRUGS):
        count = rng.integers(1, 5)
        targets = rng.choice(N_PROTEINS, size=count, replace=False)
        targets_of_drug[d] = targets
        for p in targets:
            triples.append((drug_ids[d], 1, protein_ids[p]))
    # Proteins associate with diseases on their pathway.
    for p in range(N_PROTEINS):
        for dis in np.flatnonzero(pathway_of_disease == pathway_of_protein[p]):
            if rng.random() < 0.35:
                triples.append((protein_ids[p], 2, disease_ids[dis]))
    # Drug-drug interactions between drugs sharing a target.
    for a in range(N_DRUGS):
        for b in range(a + 1, N_DRUGS):
            if np.intersect1d(targets_of_drug[a], targets_of_drug[b]).size:
                if rng.random() < 0.3:
                    triples.append((drug_ids[a], 3, drug_ids[b]))
    # Ground-truth treats edges: drug targets a protein on the disease's
    # pathway.
    treats_truth = []
    for d in range(N_DRUGS):
        drug_pathways = set(pathway_of_protein[targets_of_drug[d]].tolist())
        for dis in range(N_DISEASES):
            if pathway_of_disease[dis] in drug_pathways:
                treats_truth.append((drug_ids[d], 0, disease_ids[dis]))
    rng.shuffle(treats_truth)
    observed = treats_truth[: int(0.6 * len(treats_truth))]
    held_out = treats_truth[int(0.6 * len(treats_truth)) :]
    triples.extend(observed)

    arr = np.asarray(triples, dtype=np.int64)
    return (
        KnowledgeGraph.from_arrays(
            name="biomedical",
            num_entities=len(entities),
            num_relations=len(RELATIONS),
            train=arr,
            valid=np.asarray(held_out[: len(held_out) // 2], dtype=np.int64),
            test=np.asarray(held_out[len(held_out) // 2 :], dtype=np.int64),
            entity_labels=entities,
            relation_labels=RELATIONS,
            metadata={"held_out_treats": len(held_out)},
        ),
        {tuple(t) for t in held_out},
    )


def main() -> None:
    print("building synthetic biomedical knowledge graph...")
    graph, held_out = build_biomedical_kg(seed=0)
    print(f"  {graph}")
    print(f"  held-out true 'treats' edges to rediscover: {len(held_out)}")

    print("training ComplEx...")
    result = fit(
        graph,
        ModelConfig("complex", dim=48, seed=0),
        TrainConfig(
            job="kvsall", loss="bce", epochs=80, batch_size=128, lr=0.05,
            label_smoothing=0.1,
        ),
    )
    metrics = evaluate_ranking(result.model, graph, split="test")
    print(f"  held-out 'treats' MRR = {metrics.mrr:.3f}, Hits@10 = {metrics.hits[10]:.3f}")

    print("discovering new 'treats' candidates (GRAPH DEGREE sampling)...")
    treats_id = graph.relations.id_of("treats")
    discovery = discover_facts(
        result.model,
        graph,
        strategy="graph_degree",
        relations=[treats_id],
        top_n=30,
        max_candidates=800,
        seed=0,
    )
    print(
        f"  {discovery.num_facts} candidate facts from "
        f"{discovery.candidates_generated} sampled pairs"
    )

    # Score the discovery against the hidden ground truth.
    discovered = {tuple(t) for t in discovery.facts.tolist()}
    hits = discovered & held_out
    sensible = {
        t for t in discovered
        if graph.entities.label_of(t[0]).startswith("drug:")
        and graph.entities.label_of(t[2]).startswith("disease:")
    }
    print(f"  type-consistent (drug, treats, disease) candidates: "
          f"{len(sensible)}/{len(discovered)}")
    print(f"  rediscovered held-out true edges: {len(hits)}")

    print("top repurposing candidates:")
    order = np.argsort(discovery.ranks)
    shown = 0
    for idx in order:
        triple = tuple(discovery.facts[idx])
        s, r, o = graph.label_triple(triple)
        if not (s.startswith("drug:") and o.startswith("disease:")):
            continue
        marker = "  [held-out truth]" if triple in held_out else ""
        print(f"  rank {discovery.ranks[idx]:4.0f}  ({s}, {r}, {o}){marker}")
        shown += 1
        if shown == 10:
            break


if __name__ == "__main__":
    main()
