"""Fixture: dense reads of possibly-sparse gradients (RPR008).

Inside ``repro.kge`` a parameter's ``.grad`` may hold a ``SparseGrad``;
these helpers index it, multiply it, and hand it to numpy without any
sparse handling.
"""

from __future__ import annotations

import numpy as np

__all__ = ["grad_norm", "clip_first_row", "scaled"]


def grad_norm(param) -> float:
    return float(np.sum(np.square(param.grad)))


def clip_first_row(param) -> None:
    param.grad[0] = 0.0


def scaled(param, factor: float) -> np.ndarray:
    return factor * param.grad
