"""Workflow (Figure 1 pipeline) tests."""

from __future__ import annotations

import pytest

from repro.experiments import FactDiscoveryWorkflow
from repro.kge import ModelConfig, TrainConfig


class TestWorkflow:
    @pytest.fixture(scope="class")
    def report(self):
        flow = FactDiscoveryWorkflow(
            dataset="wn18rr-like",
            model="distmult",
            strategy="entity_frequency",
            top_n=100,
            max_candidates=100,
            use_cached_model=False,
            model_config=ModelConfig("distmult", dim=16, seed=0),
            train_config=TrainConfig(
                job="kvsall", loss="bce", epochs=15, batch_size=128, lr=0.05,
                label_smoothing=0.1,
            ),
        )
        return flow.run()

    def test_report_fields(self, report):
        assert report.dataset == "wn18rr-like"
        assert report.model_name == "distmult"
        assert report.strategy == "entity_frequency"

    def test_link_prediction_metrics_present(self, report):
        assert 0.0 <= report.link_prediction.mrr <= 1.0

    def test_discovery_result_attached(self, report):
        assert report.discovery.num_facts >= 0
        assert (report.discovery.ranks <= 100).all()

    def test_summary_is_flat(self, report):
        summary = report.summary()
        assert summary["dataset"] == "wn18rr-like"
        assert "test_mrr" in summary
        assert "efficiency_facts_per_hour" in summary
        assert all(not isinstance(v, dict) for v in summary.values())

    def test_default_configs_resolved(self):
        flow = FactDiscoveryWorkflow(model="transe")
        assert flow.model_config.name == "transe"
        assert flow.train_config.job == "negative_sampling"
