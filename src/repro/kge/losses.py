"""Training losses for KGE models.

Four standard choices:

* :class:`MarginRankingLoss` — pairwise hinge on positive vs. negative
  scores (TransE's native loss);
* :class:`BCEWithLogitsLoss` — pointwise binary cross-entropy with
  optional label smoothing (ConvE's native loss, also the KvsAll loss);
* :class:`SelfAdversarialLoss` — negative-sampling loss with adversarial
  hard-negative weighting (RotatE's native loss);
* :class:`SoftmaxCrossEntropyLoss` — 1-vs-all multiclass loss over the
  object slot.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor

__all__ = [
    "MarginRankingLoss",
    "BCEWithLogitsLoss",
    "SelfAdversarialLoss",
    "SoftmaxCrossEntropyLoss",
    "create_loss",
]


class MarginRankingLoss:
    """``mean(max(0, margin − pos + neg))`` over aligned pairs.

    ``negative`` may have shape ``(B,)`` or ``(B, num_negatives)``; in the
    latter case the positive score is broadcast across its negatives.
    """

    def __init__(self, margin: float = 1.0) -> None:
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        self.margin = margin

    def __call__(self, positive: Tensor, negative: Tensor) -> Tensor:
        if negative.ndim == 2 and positive.ndim == 1:
            positive = positive.reshape(-1, 1)
        violation = (self.margin - positive + negative).clamp_min(0.0)
        return violation.mean()


class BCEWithLogitsLoss:
    """Numerically-stable binary cross-entropy on raw scores.

    Uses ``softplus(-y·x)`` with targets mapped to ±1 internally, which is
    the stable form of ``-t log σ(x) − (1−t) log σ(−x)`` for hard targets.
    Label smoothing interpolates targets toward 0.5 before the loss, in
    which case the general two-term form is used.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(
                f"label_smoothing must be in [0, 1), got {label_smoothing}"
            )
        self.label_smoothing = label_smoothing

    def __call__(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        targets = np.asarray(targets, dtype=np.float64)
        if self.label_smoothing > 0.0:
            targets = (
                targets * (1.0 - self.label_smoothing)
                + self.label_smoothing / 2.0
            )
        if np.all((targets == 0.0) | (targets == 1.0)):
            signs = 2.0 * targets - 1.0
            return (logits * (-signs)).softplus().mean()
        # General form: softplus(x) − t·x  ==  −t·log σ(x) − (1−t)·log σ(−x)
        return (logits.softplus() - logits * targets).mean()


class SelfAdversarialLoss:
    """Self-adversarial negative sampling loss (Sun et al., 2019 — RotatE).

    ``L = −log σ(γ + s⁺) − Σᵢ wᵢ log σ(−γ − s⁻ᵢ)`` where the negative
    weights ``wᵢ = softmax(α · s⁻ᵢ)`` are treated as constants (no
    gradient): hard negatives — the ones the model currently scores
    high — dominate the loss.
    """

    def __init__(self, margin: float = 6.0, temperature: float = 1.0) -> None:
        if margin <= 0:
            raise ValueError(f"margin must be positive, got {margin}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.margin = margin
        self.temperature = temperature

    def __call__(self, positive: Tensor, negative: Tensor) -> Tensor:
        if negative.ndim != 2:
            raise ValueError("negative scores must be (B, num_negatives)")
        # Adversarial weights, detached from the tape.
        logits = self.temperature * negative.data
        logits = logits - logits.max(axis=1, keepdims=True)
        weights = np.exp(logits)
        weights /= weights.sum(axis=1, keepdims=True)

        pos_term = (-(positive + self.margin)).softplus()
        neg_term = (Tensor(weights) * (negative + self.margin).softplus()).sum(axis=1)
        return (pos_term + neg_term).mean()


class SoftmaxCrossEntropyLoss:
    """1-vs-all cross-entropy: the true entity competes with all others."""

    def __call__(self, logits: Tensor, target_ids: np.ndarray) -> Tensor:
        target_ids = np.asarray(target_ids, dtype=np.int64)
        shifted = logits - logits.max(axis=1, keepdims=True).detach()
        log_norm = shifted.exp().sum(axis=1).log()
        batch = np.arange(len(target_ids))
        picked = shifted[batch, target_ids]
        return (log_norm - picked).mean()


def create_loss(name: str, **kwargs) -> object:
    """Loss factory used by the training configuration."""
    factories = {
        "margin": MarginRankingLoss,
        "bce": BCEWithLogitsLoss,
        "softmax": SoftmaxCrossEntropyLoss,
        "self_adversarial": SelfAdversarialLoss,
    }
    if name not in factories:
        raise KeyError(f"unknown loss {name!r}; available: {sorted(factories)}")
    return factories[name](**kwargs)
