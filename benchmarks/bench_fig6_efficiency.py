"""Figure 6 — efficiency (facts per hour) of the discovery algorithm
(paper §4.2.3).

One table per dataset: strategy × model, cells are discovered facts per
hour of runtime.  Expected shape:

* UR and CC are the bottom performers;
* CLUSTERING TRIANGLES delivers the most facts per hour on average;
* the large YAGO3-10-like dataset has the lowest efficiency.
"""

from __future__ import annotations

import numpy as np
from common import (
    MAX_CANDIDATES_DEFAULT,
    TOP_N_DEFAULT,
    matrix_rows,
    save_and_print,
)

from repro.discovery import STRATEGY_ABBREVIATIONS
from repro.experiments import format_table, group_rows


def test_fig6_efficiency(benchmark):
    rows = benchmark.pedantic(matrix_rows, rounds=1, iterations=1)

    sections = []
    for dataset, dataset_rows in group_rows(rows, "dataset").items():
        table_rows = []
        for strategy, strategy_rows in group_rows(dataset_rows, "strategy").items():
            row = {"strategy": STRATEGY_ABBREVIATIONS[strategy]}
            for r in strategy_rows:
                row[r.model] = round(r.efficiency_facts_per_hour)
            table_rows.append(row)
        sections.append(
            format_table(
                table_rows,
                title=f"Figure 6 — facts/hour on {dataset} "
                f"(top_n={TOP_N_DEFAULT}, max_candidates={MAX_CANDIDATES_DEFAULT})",
            )
        )
    save_and_print("fig6_efficiency", "\n\n".join(sections))

    by_strategy = {
        strategy: float(np.mean([r.efficiency_facts_per_hour for r in srows]))
        for strategy, srows in group_rows(rows, "strategy").items()
    }
    # Shape check 1 (§4.2.3): CT delivers the most facts per hour overall.
    assert by_strategy["cluster_triangles"] == max(by_strategy.values())
    # Shape check 2: UR is outperformed by EF.
    assert by_strategy["entity_frequency"] > by_strategy["uniform_random"]

    # Shape check 3: the biggest dataset (yago310-like) has the lowest
    # mean efficiency.
    by_dataset = {
        dataset: float(np.mean([r.efficiency_facts_per_hour for r in drows]))
        for dataset, drows in group_rows(rows, "dataset").items()
    }
    assert by_dataset["yago310-like"] == min(by_dataset.values())
