"""Checkpoint save/load round-trip, atomicity, and integrity tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.kge import (
    ModelConfig,
    TrainConfig,
    create_model,
    fit,
    load_model,
    save_model,
)
from repro.resilience import CheckpointCorruptError, FaultPlan, inject


class TestRoundTrip:
    @pytest.mark.parametrize(
        "name,dim,options",
        [
            ("transe", 8, {"norm": "l2"}),
            ("distmult", 8, {}),
            ("complex", 8, {}),
            ("rescal", 4, {}),
            ("hole", 8, {}),
            ("rotate", 8, {}),
            ("simple", 8, {}),
            ("tucker", 4, {}),
        ],
    )
    def test_scores_identical_after_reload(self, tmp_path, name, dim, options):
        model = create_model(
            name, num_entities=10, num_relations=3, dim=dim, seed=2, **options
        )
        model.eval()
        path = tmp_path / f"{name}.npz"
        save_model(model, path)
        reloaded = load_model(path)
        s = np.asarray([0, 4, 9])
        r = np.asarray([0, 1, 2])
        np.testing.assert_array_equal(
            model.scores_sp(s, r), reloaded.scores_sp(s, r)
        )

    def test_conve_running_stats_survive(self, tmp_path, tiny_graph):
        """BatchNorm buffers must round-trip, not just parameters."""
        result = fit(
            tiny_graph,
            ModelConfig("conve", dim=16, seed=0, options={"num_filters": 8}),
            TrainConfig(job="kvsall", loss="bce", epochs=3, batch_size=64, lr=0.01),
        )
        path = tmp_path / "conve.npz"
        save_model(result.model, path)
        reloaded = load_model(path)
        np.testing.assert_array_equal(
            result.model.bn_conv.running_mean, reloaded.bn_conv.running_mean
        )
        s = np.asarray([0, 1, 2])
        r = np.asarray([0, 1, 2])
        np.testing.assert_allclose(
            result.model.scores_sp(s, r), reloaded.scores_sp(s, r)
        )

    def test_transe_options_preserved(self, tmp_path):
        model = create_model(
            "transe", num_entities=6, num_relations=2, dim=8, norm="l2",
            normalize_entities=False,
        )
        path = tmp_path / "t.npz"
        save_model(model, path)
        reloaded = load_model(path)
        assert reloaded.norm == "l2"
        assert not reloaded.normalize_entities

    def test_reloaded_model_is_eval_mode(self, tmp_path):
        model = create_model("distmult", num_entities=6, num_relations=2, dim=8)
        path = tmp_path / "d.npz"
        save_model(model, path)
        assert not load_model(path).training

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ValueError, match="missing header"):
            load_model(path)

    def test_creates_parent_directories(self, tmp_path):
        model = create_model("distmult", num_entities=4, num_relations=1, dim=4)
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_model(model, path)
        assert path.is_file()


def _saved_model(tmp_path):
    model = create_model("distmult", num_entities=8, num_relations=2, dim=4, seed=2)
    path = tmp_path / "model.npz"
    save_model(model, path)
    return model, path


class TestAtomicity:
    def test_no_temp_residue_after_save(self, tmp_path):
        _saved_model(tmp_path)
        assert [p.name for p in tmp_path.iterdir()] == ["model.npz"]

    def test_missing_file_is_not_reported_as_corrupt(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_model(tmp_path / "never_saved.npz")


class TestIntegrity:
    def test_truncated_archive_raises_typed_error(self, tmp_path):
        _, path = _saved_model(tmp_path)
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(CheckpointCorruptError, match="unreadable"):
            load_model(path)

    def test_injected_save_corruption_is_caught_at_load(self, tmp_path):
        model = create_model("distmult", num_entities=8, num_relations=2, dim=4)
        path = tmp_path / "model.npz"
        with inject(FaultPlan().corrupt(match="*.npz")) as plan:
            save_model(model, path)
        assert plan.fired() == 1
        with pytest.raises(CheckpointCorruptError):
            load_model(path)

    def test_tampered_parameters_fail_the_checksum(self, tmp_path):
        """A bit-flip that keeps the zip container valid must still be
        detected via the embedded content digest."""
        _, path = _saved_model(tmp_path)
        with np.load(path) as stored:
            arrays = {key: stored[key].copy() for key in stored.files}
        target = next(key for key in arrays if key != "__repro_header__")
        arrays[target].reshape(-1)[0] += 1.0
        np.savez(path, **arrays)
        with pytest.raises(CheckpointCorruptError, match="checksum mismatch"):
            load_model(path)

    def test_verify_false_skips_the_digest_check(self, tmp_path):
        _, path = _saved_model(tmp_path)
        with np.load(path) as stored:
            arrays = {key: stored[key].copy() for key in stored.files}
        target = next(key for key in arrays if key != "__repro_header__")
        arrays[target].reshape(-1)[0] += 1.0
        np.savez(path, **arrays)
        assert load_model(path, verify=False) is not None

    def test_corrupt_error_is_a_value_error(self):
        # Legacy recovery paths catch ValueError; the typed error must
        # keep flowing through them.
        assert issubclass(CheckpointCorruptError, ValueError)

    def test_legacy_checkpoint_without_checksum_loads(self, tmp_path):
        model, path = _saved_model(tmp_path)
        with np.load(path) as stored:
            arrays = {key: stored[key].copy() for key in stored.files}
        header = json.loads(bytes(arrays["__repro_header__"].tobytes()).decode())
        del header["checksum"]
        arrays["__repro_header__"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        np.savez(path, **arrays)
        reloaded = load_model(path)
        np.testing.assert_array_equal(
            model.entity_matrix(), reloaded.entity_matrix()
        )

    def test_garbled_header_raises_typed_error(self, tmp_path):
        _, path = _saved_model(tmp_path)
        with np.load(path) as stored:
            arrays = {key: stored[key].copy() for key in stored.files}
        arrays["__repro_header__"] = np.frombuffer(
            b'{"model": not-json', dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(CheckpointCorruptError, match="header"):
            load_model(path)
