"""Heartbeat board and segment-registry tests.

The orphan tests create a real ``/dev/shm`` segment whose embedded
owner pid belongs to an already-exited child process, which is exactly
the state a SIGKILLed campaign leaves behind.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory

import pytest

from repro import faults
from repro.faults import FaultPlan
from repro.parallel import registry
from repro.parallel.watchdog import CellTimeoutError, HeartbeatBoard, WorkerCrashError
from repro.resilience import FaultInjectedError, ResilienceError


def _exit_immediately() -> None:
    os._exit(0)


def _dead_pid() -> int:
    """A pid guaranteed to be dead: a child that already exited."""
    ctx = multiprocessing.get_context("spawn")
    child = ctx.Process(target=_exit_immediately)
    child.start()
    child.join(timeout=60.0)
    assert child.exitcode == 0
    return child.pid


class TestErrorTaxonomy:
    def test_timeout_is_mechanically_a_crash(self):
        # The scheduler's crash policy handles both through one path.
        assert issubclass(CellTimeoutError, WorkerCrashError)
        assert issubclass(WorkerCrashError, ResilienceError)


class TestHeartbeatBoard:
    def test_beat_moves_the_snapshot(self):
        with HeartbeatBoard.create() as board:
            before = board.snapshot()
            board.beat()
            after = board.snapshot()
            assert after != before
            assert len(after) == len(before)

    def test_attach_sees_owner_beats(self):
        board = HeartbeatBoard.create()
        try:
            attached = HeartbeatBoard.attach(board.name)
            baseline = attached.snapshot()
            board.beat()
            assert attached.snapshot() != baseline
            attached.close()
        finally:
            board.close()

    def test_close_is_idempotent_and_unregisters(self):
        board = HeartbeatBoard.create()
        name = board.name
        assert name in registry.registered_segments()
        board.close()
        board.close()  # second close must be silent
        assert name not in registry.registered_segments()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_attached_close_leaves_segment_alive(self):
        board = HeartbeatBoard.create()
        try:
            attached = HeartbeatBoard.attach(board.name)
            attached.close()
            still_there = shared_memory.SharedMemory(name=board.name)
            still_there.close()
        finally:
            board.close()

    def test_heartbeat_emit_is_a_fault_site(self):
        with HeartbeatBoard.create() as board:
            slot = os.getpid() % HeartbeatBoard.SLOTS
            with faults.inject(FaultPlan().fail("heartbeat_emit", match=str(slot))):
                with pytest.raises(FaultInjectedError):
                    board.beat()
            board.beat()  # budget spent; beats flow again


class TestRegistryNames:
    def test_allocated_names_embed_this_pid(self):
        name = registry.allocate_name()
        assert name.startswith(registry.SEGMENT_PREFIX)
        assert registry.owner_pid(name) == os.getpid()
        assert registry.allocate_name() != name  # counter advances

    def test_owner_pid_of_foreign_names(self):
        assert registry.owner_pid("psm_abc123") is None
        assert registry.owner_pid(f"{registry.SEGMENT_PREFIX}notanumber-0") is None
        assert registry.owner_pid(f"{registry.SEGMENT_PREFIX}4242-17") == 4242


class TestRegisteredReaping:
    def test_reap_registered_unlinks_and_tolerates_double_reap(self):
        shm = shared_memory.SharedMemory(
            create=True, name=registry.allocate_name(), size=64
        )
        registry.register_segment(shm)
        assert shm.name in registry.registered_segments()
        reaped = registry.reap_registered()
        assert shm.name in reaped
        assert registry.registered_segments() == []
        assert registry.reap_registered() == []  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shm.name)

    def test_unregistered_segment_is_left_alone(self):
        shm = shared_memory.SharedMemory(
            create=True, name=registry.allocate_name(), size=64
        )
        registry.register_segment(shm)
        registry.unregister_segment(shm.name)
        assert shm.name not in registry.registered_segments()
        registry.reap_registered()
        survivor = shared_memory.SharedMemory(name=shm.name)
        survivor.close()
        shm.close()
        shm.unlink()


class TestOrphanScan:
    def test_dead_owner_segment_is_detected_and_reaped(self):
        dead = _dead_pid()
        name = f"{registry.SEGMENT_PREFIX}{dead}-0"
        shm = shared_memory.SharedMemory(create=True, name=name, size=64)
        shm.close()
        try:
            assert name in registry.orphaned_segments()
            reclaimed = registry.reap_orphans()
            assert name in reclaimed
            assert name not in registry.orphaned_segments()
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
        finally:
            try:
                leftover = shared_memory.SharedMemory(name=name)
                leftover.close()
                leftover.unlink()
            except FileNotFoundError:
                pass

    def test_live_owner_segment_is_not_an_orphan(self):
        shm = shared_memory.SharedMemory(
            create=True, name=registry.allocate_name(), size=64
        )
        try:
            assert shm.name not in registry.orphaned_segments()
        finally:
            shm.close()
            shm.unlink()

    def test_missing_shm_dir_reports_no_orphans(self, tmp_path):
        assert registry.orphaned_segments(tmp_path / "nope") == []
        assert registry.reap_orphans(tmp_path / "nope") == []
