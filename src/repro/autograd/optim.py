"""Gradient-descent optimizers for the autodiff engine.

The paper trains all embedding models with Adam; SGD and Adagrad are
provided for completeness since the paper lists them as the widely-used
alternatives.

Row-sparse fast path
--------------------
When a parameter accumulates a :class:`~repro.autograd.sparse.SparseGrad`
(opt-in via ``Parameter(..., sparse_grad=True)``), every optimizer
applies a row-wise update kernel instead of sweeping the full table, and
each kernel is pinned **bitwise identical** to the dense update it
replaces:

* **SGD without momentum** and **Adagrad** are bit-identical by
  construction: a row with zero gradient receives a zero parameter delta
  and a zero accumulator delta, so skipping it changes nothing.
* **SGD with momentum** and **Adam** mathematically touch *every* row at
  *every* step (decayed momentum keeps drifting parameters whose
  gradient is zero).  These optimizers go lazy: touched rows are updated
  immediately, untouched rows carry a per-row step counter and are
  caught up when next touched or at :meth:`Optimizer.flush`.  The
  catch-up **exactly replays** the missed per-step operations (the
  geometric decay of ``m``/``v`` and the corresponding parameter drift,
  with the bias corrections of each replayed step) rather than applying
  a closed-form geometric sum — re-associating the arithmetic would
  break bit-identity.  Rows with all-zero momentum state are skipped,
  which is an exact no-op.  When every stale row is exactly one step
  behind — the per-batch-flush regime of models whose
  ``post_batch_hook`` mutates parameters directly (TransE) — the replay
  collapses to a fused in-place kernel: predicated (``where=``) ufuncs
  over the full tables on persistent scratch buffers, with no gathers,
  scatters or temporaries, applying the dense path's own per-element
  operations to the stale rows only.

Because laziness defers updates, callers must :meth:`Optimizer.flush`
before reading parameters for evaluation, snapshots, or checkpoints; the
KGE training loop does this at every epoch boundary (and after every
batch for models whose ``post_batch_hook`` mutates parameters directly).
The learning rate must stay constant between flushes — the training
loop's ``lr_decay`` runs right after the epoch-boundary flush.
"""

from __future__ import annotations

from functools import partial
from typing import Iterable

import numpy as np

from ..obs import get_registry, span
from .sparse import SparseGrad
from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adagrad", "Adam"]


def _broadcast_rowwise(scalars: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape per-row scalars to broadcast over ``(rows, ...)`` work arrays."""
    return scalars.reshape((-1,) + (1,) * (ndim - 1))


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def _observe_step(self) -> None:
        """Tally one optimizer step in the active metrics registry.

        Subclasses call this at the top of ``step()``; against the null
        backend it is two no-op calls, cheap enough for the hot loop.
        """
        get_registry().counter("optim.steps_count").inc()

    def flush(self) -> None:
        """Settle all lazily-deferred row updates.

        After this call every parameter holds exactly the value the dense
        path would hold.  A no-op for eager optimizers (plain SGD,
        Adagrad) and for parameters that never received a sparse
        gradient.  Must be called before parameters are read for
        evaluation, snapshotting, or checkpointing, and before the
        learning rate is changed.
        """


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]
        # Lazy row-sparse bookkeeping (momentum only): completed step
        # count per parameter, and per-row caught-up-through markers.
        self._pt = [0] * len(self.params)
        self._last: list[np.ndarray | None] = [None] * len(self.params)
        # Scratch for the fused one-step replay.  Held in a dict so the
        # guard snapshotter ignores it — it carries no state.
        self._scratch: dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._observe_step()
        mu = self.momentum
        for i, (param, velocity) in enumerate(zip(self.params, self._velocity)):
            grad = param.grad
            if grad is None:
                continue
            if mu == 0.0:
                # Bit-identical by construction: absent rows would have
                # received `x -= lr · 0`, an exact no-op.
                if isinstance(grad, SparseGrad):
                    param.data[grad.rows] -= self.lr * grad.values
                else:
                    param.data -= self.lr * grad
                continue
            if isinstance(grad, SparseGrad):
                last = self._last[i]
                if last is None:
                    last = self._last[i] = np.full(
                        param.data.shape[0], self._pt[i], dtype=np.int64
                    )
                    # From now on gather_rows must settle rows before
                    # the forward pass reads them (see Tensor._catch_up).
                    param._catch_up = partial(self._catch_up_rows, i)
                rows = grad.rows
                self._replay(i, param.data, velocity, last, rows, self._pt[i])
                self._pt[i] += 1
                v_rows = velocity[rows]
                v_rows *= mu
                v_rows += grad.values
                velocity[rows] = v_rows
                param.data[rows] -= self.lr * v_rows
                last[rows] = self._pt[i]
            else:
                last = self._last[i]
                if last is not None:
                    # A dense gradient on a lazily-tracked parameter:
                    # settle every stale row before the dense update.
                    self._replay(i, param.data, velocity, last, None, self._pt[i])
                self._pt[i] += 1
                velocity *= mu
                velocity += grad
                param.data -= self.lr * velocity
                if last is not None:
                    last[:] = self._pt[i]

    def flush(self) -> None:
        if self.momentum == 0.0:
            return
        with span("optim.flush"):
            for i, (param, velocity) in enumerate(zip(self.params, self._velocity)):
                last = self._last[i]
                if last is None:
                    continue
                self._replay(i, param.data, velocity, last, None, self._pt[i])
                last[:] = self._pt[i]

    def _catch_up_rows(self, i: int, rows: np.ndarray) -> None:
        """Settle specific rows ahead of a forward-pass gather."""
        last = self._last[i]
        if last is None:
            return
        rows = np.unique(rows)
        self._replay(i, self.params[i].data, self._velocity[i], last, rows, self._pt[i])
        last[rows] = self._pt[i]

    def _replay(
        self,
        i: int,
        data: np.ndarray,
        velocity: np.ndarray,
        last: np.ndarray,
        rows: np.ndarray | None,
        target: int,
    ) -> None:
        """Exactly replay the zero-gradient steps of stale rows.

        For every missed step the dense path computed ``v = μ·v`` then
        ``x = x − lr·v``; replaying those two rounded operations per step
        (rather than a closed-form geometric sum, which re-associates the
        arithmetic) keeps the lazy path bitwise equal to the dense one.
        Rows whose velocity is entirely zero are skipped — their replay
        is an exact no-op.

        When the whole stale set is exactly one step behind (a model's
        ``post_batch_hook`` forcing a flush per batch), the replay runs
        fused in place: predicated ufuncs apply the same two rounded
        operations to the stale rows of the full tables, with no gather,
        scatter, sort or temporaries.
        """
        if rows is None:
            stale = last < target
            if not stale.any():
                return
            if int(last.min()) >= target - 1:
                mask = _broadcast_rowwise(stale, data.ndim)
                buf = self._scratch.get(i)
                if buf is None or buf.shape != data.shape:
                    buf = self._scratch[i] = np.empty_like(data)
                np.multiply(velocity, self.momentum, out=velocity, where=mask)
                np.multiply(velocity, self.lr, out=buf, where=mask)
                np.subtract(data, buf, out=data, where=mask)
                return
            rows = np.flatnonzero(stale)
        gaps = target - last[rows]
        hot = gaps > 0
        if not np.any(hot):
            return
        rows = rows[hot]
        gaps = gaps[hot]
        live = np.any(velocity[rows].reshape(rows.shape[0], -1) != 0.0, axis=1)
        rows = rows[live]
        gaps = gaps[live]
        if rows.shape[0] == 0:
            return
        order = np.argsort(-gaps, kind="stable")
        rows = rows[order]
        gaps = gaps[order]
        v_work = velocity[rows]
        x_work = data[rows]
        neg = -gaps
        for offset in range(1, int(gaps[0]) + 1):
            count = int(np.searchsorted(neg, -offset, side="right"))
            vw = v_work[:count]
            vw *= self.momentum
            x_work[:count] -= self.lr * vw
        velocity[rows] = v_work
        data[rows] = x_work


class Adagrad(Optimizer):
    """Adagrad (Duchi et al., 2011)."""

    def __init__(self, params: Iterable[Tensor], lr: float, eps: float = 1e-10) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._observe_step()
        for param, accum in zip(self.params, self._accum):
            grad = param.grad
            if grad is None:
                continue
            if isinstance(grad, SparseGrad):
                # Bit-identical by construction: absent rows would have
                # added 0² to the accumulator and subtracted an exact 0.
                rows, values = grad.rows, grad.values
                accum_rows = accum[rows]
                accum_rows += values**2
                accum[rows] = accum_rows
                param.data[rows] -= self.lr * values / (np.sqrt(accum_rows) + self.eps)
            else:
                accum += grad**2
                param.data -= self.lr * grad / (np.sqrt(accum) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction.

    The dense path runs fused in-place on two persistent scratch buffers
    per parameter (no per-step temporaries); the sparse path updates the
    touched rows eagerly and catches stale rows up by exact replay (see
    the module docstring).  Both are pinned bitwise identical to the
    classic allocating implementation by regression tests.
    """

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0
        # Lazy row-sparse bookkeeping: completed step count per
        # parameter, per-row caught-up-through markers, the step count at
        # lazy engagement, and the bias-correction schedule of every
        # participating step since engagement (replayed updates must use
        # the bias factors of the step being replayed).
        self._pt = [0] * len(self.params)
        self._last: list[np.ndarray | None] = [None] * len(self.params)
        self._base = [0] * len(self.params)
        self._bias1: list[list[float]] = [[] for _ in self.params]
        self._bias2: list[list[float]] = [[] for _ in self.params]
        # Scratch buffers for the fused dense step.  Held in a dict so
        # the guard snapshotter ignores them — they carry no state.
        self._scratch: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def step(self) -> None:
        self._observe_step()
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for i, (param, m, v) in enumerate(zip(self.params, self._m, self._v)):
            grad = param.grad
            if grad is None:
                continue
            if isinstance(grad, SparseGrad):
                self._step_sparse(i, param, m, v, grad, bias1, bias2)
            else:
                last = self._last[i]
                if last is not None:
                    # Dense gradient on a lazily-tracked parameter:
                    # settle every stale row before the dense update.
                    self._replay(i, param, m, v, None, self._pt[i])
                self._step_dense(i, param, m, v, grad)
                self._pt[i] += 1
                if last is not None:
                    self._bias1[i].append(bias1)
                    self._bias2[i].append(bias2)
                    last[:] = self._pt[i]

    def flush(self) -> None:
        with span("optim.flush"):
            for i, (param, m, v) in enumerate(zip(self.params, self._m, self._v)):
                last = self._last[i]
                if last is None:
                    continue
                self._replay(i, param, m, v, None, self._pt[i])
                last[:] = self._pt[i]

    def _catch_up_rows(self, i: int, rows: np.ndarray) -> None:
        """Settle specific rows ahead of a forward-pass gather."""
        last = self._last[i]
        if last is None:
            return
        rows = np.unique(rows)
        self._replay(i, self.params[i], self._m[i], self._v[i], rows, self._pt[i])
        last[rows] = self._pt[i]

    # ------------------------------------------------------------------
    # Dense kernel (fused, allocation-free)
    # ------------------------------------------------------------------
    def _buffers(self, i: int, param: Tensor) -> tuple[np.ndarray, np.ndarray]:
        pair = self._scratch.get(i)
        if pair is None or pair[0].shape != param.data.shape:
            pair = (np.empty_like(param.data), np.empty_like(param.data))
            self._scratch[i] = pair
        return pair

    def _step_dense(
        self,
        i: int,
        param: Tensor,
        m: np.ndarray,
        v: np.ndarray,
        grad: np.ndarray,
    ) -> None:
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        buf, tmp = self._buffers(i, param)
        if self.weight_decay > 0.0:
            np.multiply(param.data, self.weight_decay, out=buf)
            np.add(grad, buf, out=buf)
            g = buf
        else:
            g = grad
        m *= self.beta1
        np.multiply(g, 1.0 - self.beta1, out=tmp)
        m += tmp
        v *= self.beta2
        np.multiply(g, g, out=tmp)
        tmp *= 1.0 - self.beta2
        v += tmp
        # lr · (m / bias1) / (sqrt(v / bias2) + eps), in the rounding
        # order of the allocating expression this fused form replaces.
        np.divide(v, bias2, out=tmp)
        np.sqrt(tmp, out=tmp)
        tmp += self.eps
        np.divide(m, bias1, out=buf)
        buf *= self.lr
        buf /= tmp
        param.data -= buf

    # ------------------------------------------------------------------
    # Sparse kernel (eager on touched rows, lazy elsewhere)
    # ------------------------------------------------------------------
    def _step_sparse(
        self,
        i: int,
        param: Tensor,
        m: np.ndarray,
        v: np.ndarray,
        grad: SparseGrad,
        bias1: float,
        bias2: float,
    ) -> None:
        last = self._last[i]
        if last is None:
            self._base[i] = self._pt[i]
            last = self._last[i] = np.full(
                param.data.shape[0], self._pt[i], dtype=np.int64
            )
            # From now on gather_rows must settle rows before the
            # forward pass reads them (see Tensor._catch_up).
            param._catch_up = partial(self._catch_up_rows, i)
        rows, values = grad.rows, grad.values
        self._replay(i, param, m, v, rows, self._pt[i])
        self._pt[i] += 1
        self._bias1[i].append(bias1)
        self._bias2[i].append(bias2)
        if self.weight_decay > 0.0:
            values = values + self.weight_decay * param.data[rows]
        m_rows = m[rows]
        m_rows *= self.beta1
        m_rows += (1.0 - self.beta1) * values
        m[rows] = m_rows
        v_rows = v[rows]
        v_rows *= self.beta2
        v_rows += (1.0 - self.beta2) * values**2
        v[rows] = v_rows
        update = self.lr * (m_rows / bias1)
        update /= np.sqrt(v_rows / bias2) + self.eps
        param.data[rows] -= update
        last[rows] = self._pt[i]

    def _replay(
        self,
        i: int,
        param: Tensor,
        m: np.ndarray,
        v: np.ndarray,
        rows: np.ndarray | None,
        target: int,
    ) -> None:
        """Exactly replay zero-gradient Adam steps for stale rows.

        The dense path keeps decaying ``m``/``v`` and nudging the
        parameter every step even when a row's gradient is zero.  The
        replay applies those per-step operations — with the recorded
        bias corrections of each replayed step — to the stale rows only,
        in the same rounding order, so the result is bitwise equal to
        the dense path.  Without weight decay, rows whose moments are
        entirely zero are skipped: their replayed update is exactly zero.

        When the whole stale set is exactly one step behind (a model's
        ``post_batch_hook`` forcing a flush per batch), the replay runs
        fused in place on the persistent scratch pair instead — see
        :meth:`_replay_one_step`.
        """
        last = self._last[i]
        if rows is None:
            stale = last < target
            if not stale.any():
                return
            if int(last.min()) >= target - 1:
                self._replay_one_step(i, param, m, v, stale, target)
                return
            rows = np.flatnonzero(stale)
        gaps = target - last[rows]
        hot = gaps > 0
        if not np.any(hot):
            return
        rows = rows[hot]
        gaps = gaps[hot]
        wd = self.weight_decay
        if wd == 0.0:
            flat_m = m[rows].reshape(rows.shape[0], -1)
            flat_v = v[rows].reshape(rows.shape[0], -1)
            live = np.any(flat_m != 0.0, axis=1) | np.any(flat_v != 0.0, axis=1)
            rows = rows[live]
            gaps = gaps[live]
            if rows.shape[0] == 0:
                return
        order = np.argsort(-gaps, kind="stable")
        rows = rows[order]
        gaps = gaps[order]
        b1 = np.asarray(self._bias1[i], dtype=np.float64)
        b2 = np.asarray(self._bias2[i], dtype=np.float64)
        base = self._base[i]
        starts = last[rows]
        m_work = m[rows]
        v_work = v[rows]
        x_work = param.data[rows]
        ndim = x_work.ndim
        neg = -gaps
        for offset in range(1, int(gaps[0]) + 1):
            count = int(np.searchsorted(neg, -offset, side="right"))
            idx = starts[:count] + offset - base - 1
            f1 = _broadcast_rowwise(b1[idx], ndim)
            f2 = _broadcast_rowwise(b2[idx], ndim)
            mw = m_work[:count]
            vw = v_work[:count]
            xw = x_work[:count]
            if wd > 0.0:
                g = wd * xw
                mw *= self.beta1
                mw += (1.0 - self.beta1) * g
                vw *= self.beta2
                vw += (1.0 - self.beta2) * g**2
            else:
                mw *= self.beta1
                vw *= self.beta2
            update = self.lr * (mw / f1)
            update /= np.sqrt(vw / f2) + self.eps
            xw -= update
        m[rows] = m_work
        v[rows] = v_work
        param.data[rows] = x_work

    def _replay_one_step(
        self,
        i: int,
        param: Tensor,
        m: np.ndarray,
        v: np.ndarray,
        stale: np.ndarray,
        target: int,
    ) -> None:
        """Fused replay of a single missed step for every stale row.

        The per-batch-flush regime (TransE's row renormalisation) leaves
        every untouched row exactly one step behind at each flush, so the
        general gather/sort/scatter kernel degenerates to copying nearly
        the whole table three times per batch.  Here the same per-step
        operations run as predicated (``where=``) ufuncs directly on the
        full ``m``/``v``/parameter tables, using the dense step's
        persistent scratch pair — no gathers, no temporaries.  The
        element-wise operations and their rounding order are identical
        to one iteration of :meth:`_replay`'s loop, and rows whose
        moments are zero come out bitwise unchanged exactly as the dense
        path leaves them, so bit-identity is preserved without the
        live-row filter.
        """
        mask = _broadcast_rowwise(stale, param.data.ndim)
        step = target - self._base[i] - 1
        f1 = self._bias1[i][step]
        f2 = self._bias2[i][step]
        buf, tmp = self._buffers(i, param)
        wd = self.weight_decay
        if wd > 0.0:
            np.multiply(param.data, wd, out=buf, where=mask)
            np.multiply(m, self.beta1, out=m, where=mask)
            np.multiply(buf, 1.0 - self.beta1, out=tmp, where=mask)
            np.add(m, tmp, out=m, where=mask)
            np.multiply(v, self.beta2, out=v, where=mask)
            np.multiply(buf, buf, out=tmp, where=mask)
            np.multiply(tmp, 1.0 - self.beta2, out=tmp, where=mask)
            np.add(v, tmp, out=v, where=mask)
        else:
            np.multiply(m, self.beta1, out=m, where=mask)
            np.multiply(v, self.beta2, out=v, where=mask)
        np.divide(m, f1, out=buf, where=mask)
        np.multiply(buf, self.lr, out=buf, where=mask)
        np.divide(v, f2, out=tmp, where=mask)
        np.sqrt(tmp, out=tmp, where=mask)
        np.add(tmp, self.eps, out=tmp, where=mask)
        np.divide(buf, tmp, out=buf, where=mask)
        np.subtract(param.data, buf, out=param.data, where=mask)
