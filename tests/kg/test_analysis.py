"""Tests for dataset analysis utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import (
    TripleSet,
    cardinality_histogram,
    dataset_report,
    powerlaw_exponent,
    relation_profiles,
)


def make(triples, n=12, k=4) -> TripleSet:
    return TripleSet(np.asarray(triples, dtype=np.int64), n, k)


@pytest.fixture()
def typed_relations() -> TripleSet:
    triples = []
    # Relation 0: 1-1 (each head one tail, each tail one head).
    triples += [[0, 0, 6], [1, 0, 7], [2, 0, 8]]
    # Relation 1: 1-N (one head, many tails).
    triples += [[0, 1, i] for i in range(4, 10)]
    # Relation 2: N-1 (many heads, one tail).
    triples += [[i, 2, 11] for i in range(6)]
    # Relation 3: N-M.
    triples += [[s, 3, o] for s in range(3) for o in range(6, 10)]
    return make(triples)


class TestRelationProfiles:
    def test_cardinality_classes(self, typed_relations):
        by_relation = {p.relation: p for p in relation_profiles(typed_relations)}
        assert by_relation[0].cardinality == "1-1"
        assert by_relation[1].cardinality == "1-N"
        assert by_relation[2].cardinality == "N-1"
        assert by_relation[3].cardinality == "N-M"

    def test_tph_hpt_values(self, typed_relations):
        by_relation = {p.relation: p for p in relation_profiles(typed_relations)}
        assert by_relation[1].tails_per_head == pytest.approx(6.0)
        assert by_relation[2].heads_per_tail == pytest.approx(6.0)
        assert by_relation[0].tails_per_head == pytest.approx(1.0)

    def test_functional_flag(self, typed_relations):
        by_relation = {p.relation: p for p in relation_profiles(typed_relations)}
        assert by_relation[0].is_functional
        assert by_relation[2].is_functional  # each head one tail
        assert not by_relation[1].is_functional

    def test_histogram_sums_to_relation_count(self, typed_relations):
        histogram = cardinality_histogram(typed_relations)
        assert sum(histogram.values()) == 4
        assert histogram["1-N"] == 1


class TestPowerlawExponent:
    def test_recovers_known_exponent(self):
        # Inverse-CDF sampling of a continuous power law with α = 2.5.
        rng = np.random.default_rng(0)
        alpha = 2.5
        u = rng.random(50_000)
        samples = (1.0 - u) ** (-1.0 / (alpha - 1.0))
        estimate = powerlaw_exponent(samples, x_min=1.0)
        assert estimate == pytest.approx(alpha, rel=0.02)

    def test_needs_enough_values(self):
        with pytest.raises(ValueError):
            powerlaw_exponent(np.asarray([2.0]))

    def test_degenerate_values_rejected(self):
        with pytest.raises(ValueError):
            powerlaw_exponent(np.asarray([1.0, 1.0, 1.0]))


class TestDatasetReport:
    def test_report_keys(self, tiny_graph):
        report = dataset_report(tiny_graph)
        expected = {
            "name", "entities", "relations", "train", "valid", "test",
            "triples_per_entity", "average_clustering", "complement_size",
            "cardinalities", "max_degree", "median_degree",
            "isolated_entities", "degree_powerlaw_alpha",
        }
        assert expected <= set(report)

    def test_report_consistency(self, tiny_graph):
        report = dataset_report(tiny_graph)
        assert report["entities"] == tiny_graph.num_entities
        assert report["train"] == len(tiny_graph.train)
        assert report["triples_per_entity"] == pytest.approx(
            len(tiny_graph.train) / tiny_graph.num_entities
        )
        assert sum(report["cardinalities"].values()) == len(
            tiny_graph.train.unique_relations()
        )

    def test_replicas_have_heavy_tails(self):
        """The popularity skew the frequency strategies exploit: fitting
        the degree tail (x_min = median degree) gives an exponent in the
        heavy-tail regime typical for knowledge graphs."""
        from repro.kg import GraphStatistics, load_dataset

        graph = load_dataset("yago310-like")
        degree = GraphStatistics(graph.train, backend="sparse").degree
        positive = degree[degree > 0].astype(float)
        alpha = powerlaw_exponent(positive, x_min=float(np.median(positive)))
        assert 1.5 < alpha < 4.0
