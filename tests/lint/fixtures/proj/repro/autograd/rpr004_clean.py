"""RPR004 clean fixture: both accepted backward-closure styles."""


def add(a, b):
    out_data = a.data + b.data

    def backward(grad):
        a._accumulate(_unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(grad)

    return a._make(out_data, (a, b), backward)
