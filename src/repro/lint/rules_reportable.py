"""RPR012 — Reportable/API drift across all result classes at once.

Every ``summary()`` payload in the project speaks one vocabulary:
durations end in ``_seconds``, tallies end in ``_count``.  RPR009
enforces the *protocol* per class; this rule checks the *keys* globally
— off-vocabulary suffixes (``_time``, ``_ms``, ``_cnt``, ``num_*``) and
cross-class drift where one result class says ``facts`` while another
says ``facts_count`` for the same quantity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from .findings import Finding
from .rules import ProjectRule, register_rule

if TYPE_CHECKING:
    from .callgraph import CallGraph, ProjectIndex

__all__ = ["ReportableDriftRule"]

_SCOPES = (
    "repro.kge",
    "repro.discovery",
    "repro.experiments",
    "repro.resilience",
    "repro.obs",
    "repro.serve",
    "repro.api",
)

#: Off-vocabulary suffix → the canonical one.
_BAD_SUFFIXES = {
    "_sec": "_seconds",
    "_secs": "_seconds",
    "_time": "_seconds",
    "_times": "_seconds",
    "_duration": "_seconds",
    "_ms": "_seconds",
    "_millis": "_seconds",
    "_cnt": "_count",
    "_num": "_count",
    "_tally": "_count",
}

_CANONICAL_SUFFIXES = ("_seconds", "_count")


def _in_scope(module: str) -> bool:
    return any(
        module == scope or module.startswith(scope + ".") for scope in _SCOPES
    )


@register_rule
class ReportableDriftRule(ProjectRule):
    rule_id = "RPR012"
    name = "reportable-drift"
    description = (
        "summary() keys off the canonical *_seconds/*_count vocabulary, "
        "checked across every result class at once"
    )
    rationale = (
        "Campaign tooling joins summaries from training, discovery, "
        "ranking, and resilience into one table; a class that reports "
        "'elapsed_ms' next to one reporting 'elapsed_seconds', or bare "
        "'facts' next to 'facts_count', silently breaks those joins.  "
        "Consistency is a property of the whole result-class population, "
        "so the check needs the project index, not one file."
    )
    example = (
        "class Result:\n"
        "    def summary(self):\n"
        "        return {'elapsed_ms': self.ms,   # RPR012: use *_seconds\n"
        "                'facts': self.n}         # RPR012 if a sibling\n"
        "                                         # class says facts_count\n"
    )

    def check_project(
        self, index: "ProjectIndex", graph: "CallGraph"
    ) -> Iterator[Finding]:
        population = []  # (module, path, cls_name, key, line, col)
        for module in sorted(index.modules):
            if not _in_scope(module):
                continue
            info = index.modules[module]
            for cls_name in sorted(info.classes):
                for key, line, col in info.classes[cls_name].summary_keys:
                    population.append(
                        (module, info.path, cls_name, key, line, col)
                    )

        # The canonical spelling each suffixed key establishes project-wide.
        canonical: dict[str, tuple[str, str]] = {}
        for _module, _path, cls_name, key, _line, _col in population:
            base = key.rsplit(".", 1)[-1]
            for suffix in _CANONICAL_SUFFIXES:
                if base.endswith(suffix):
                    stem = base[: -len(suffix)]
                    canonical.setdefault(stem, (base, cls_name))

        for _module, path, cls_name, key, line, col in population:
            base = key.rsplit(".", 1)[-1]
            flagged = False
            for suffix, replacement in _BAD_SUFFIXES.items():
                if base.endswith(suffix):
                    want = base[: -len(suffix)] + replacement
                    yield self.project_finding(
                        path,
                        line,
                        col,
                        f"summary key '{key}' of '{cls_name}' is off the "
                        f"canonical vocabulary; use '{want}'",
                    )
                    flagged = True
                    break
            if flagged:
                continue
            if base.startswith("num_"):
                yield self.project_finding(
                    path,
                    line,
                    col,
                    f"summary key '{key}' of '{cls_name}' is off the "
                    f"canonical vocabulary; use '{base[4:]}_count'",
                )
                continue
            if not base.endswith(_CANONICAL_SUFFIXES) and base in canonical:
                spelled, owner = canonical[base]
                if owner != cls_name:
                    yield self.project_finding(
                        path,
                        line,
                        col,
                        f"summary key '{key}' of '{cls_name}' drifts from "
                        f"'{spelled}' established by '{owner}'",
                    )
