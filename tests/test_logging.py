"""Logging-instrumentation tests: the library narrates what it does."""

from __future__ import annotations

import logging

import pytest

from repro.discovery import discover_facts
from repro.kge import ModelConfig, TrainConfig, fit


class TestTrainingLogs:
    def test_completion_logged_at_info(self, tiny_graph, caplog):
        with caplog.at_level(logging.INFO, logger="repro.kge.training"):
            fit(
                tiny_graph,
                ModelConfig("distmult", dim=8, seed=0),
                TrainConfig(job="kvsall", loss="bce", epochs=2, batch_size=64, lr=0.05),
            )
        messages = [r.message for r in caplog.records]
        assert any("trained DistMult for 2 epochs" in m for m in messages)

    def test_epoch_losses_logged_at_debug(self, tiny_graph, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro.kge.training"):
            fit(
                tiny_graph,
                ModelConfig("distmult", dim=8, seed=0),
                TrainConfig(job="kvsall", loss="bce", epochs=3, batch_size=64, lr=0.05),
            )
        epochs = [r for r in caplog.records if r.message.startswith("epoch ")]
        assert len(epochs) == 3

    def test_early_stopping_logged(self, tiny_graph, caplog):
        with caplog.at_level(logging.INFO, logger="repro.kge.training"):
            fit(
                tiny_graph,
                ModelConfig("distmult", dim=8, seed=0),
                TrainConfig(
                    job="kvsall", loss="bce", epochs=30, batch_size=64, lr=1e-12,
                    eval_every=1, early_stopping_patience=2,
                ),
            )
        assert any("early stopping" in r.message for r in caplog.records)


class TestDiscoveryLogs:
    def test_summary_logged_at_info(self, trained_distmult, tiny_graph, caplog):
        with caplog.at_level(logging.INFO, logger="repro.discovery.discover"):
            discover_facts(
                trained_distmult, tiny_graph, strategy="entity_frequency",
                top_n=15, max_candidates=36, seed=0,
            )
        assert any("discovered" in r.message for r in caplog.records)

    def test_per_relation_detail_at_debug(
        self, trained_distmult, tiny_graph, caplog
    ):
        with caplog.at_level(logging.DEBUG, logger="repro.discovery.discover"):
            discover_facts(
                trained_distmult, tiny_graph, strategy="entity_frequency",
                top_n=15, max_candidates=36, seed=0,
            )
        per_relation = [
            r for r in caplog.records if r.message.startswith("relation ")
        ]
        assert len(per_relation) == len(tiny_graph.train.unique_relations())


class TestRunnerLogs:
    def test_cache_events_logged(self, tmp_path, monkeypatch, caplog):
        from repro.experiments import clear_model_cache, get_trained_model

        monkeypatch.setenv("REPRO_MODEL_CACHE", str(tmp_path))
        clear_model_cache()
        with caplog.at_level(logging.INFO, logger="repro.experiments.runner"):
            get_trained_model("wn18rr-like", "distmult")
        assert any("training distmult" in r.message for r in caplog.records)

        clear_model_cache()
        caplog.clear()
        with caplog.at_level(logging.INFO, logger="repro.experiments.runner"):
            get_trained_model("wn18rr-like", "distmult")
        assert any("disk cache" in r.message for r in caplog.records)
