"""On-disk incremental cache for the two-pass engine.

Pass 1 is purely local — a module's fact record and per-file findings
are a function of its source text and the enabled rule set — so both
are cached under the module's content digest and reused on a match
without re-parsing.  Pass 2 is whole-program: its findings are cached
under a *project digest* (every module digest plus the enabled rule
ids) and reused only when nothing in the tree changed.

A cache written by a different engine version or rule set is ignored
wholesale rather than migrated; a corrupt cache file is treated as
cold.  Writes go through a temp file + ``os.replace`` so a crashed run
never leaves a torn cache behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from .findings import Finding
from .index import ModuleInfo

__all__ = ["CACHE_VERSION", "LintCache", "content_digest", "default_cache_dir"]

CACHE_VERSION = 1

_CACHE_FILENAME = "cache.json"


def default_cache_dir(config_source: str) -> Path | None:
    """``.repro-lint-cache/`` next to the pyproject that configured us."""
    if not config_source or config_source == "<defaults>":
        return None
    return Path(config_source).parent / ".repro-lint-cache"


def content_digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _finding_from_dict(data: dict) -> Finding:
    return Finding(
        rule_id=data["rule_id"],
        path=data["path"],
        line=data["line"],
        col=data["col"],
        message=data["message"],
    )


class LintCache:
    """Digest-keyed store of pass-1 records and pass-2 findings.

    Constructed with ``directory=None`` the cache is inert: every lookup
    misses and :meth:`save` does nothing, so the engine needs no
    conditionals around it.  Lookups and stores are thread-safe — pass 1
    runs them from worker threads.
    """

    def __init__(
        self, directory: Path | None, rule_ids: tuple[str, ...]
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.rule_ids = tuple(sorted(rule_ids))
        self._lock = threading.Lock()
        self._modules: dict[str, dict] = {}
        self._project: dict | None = None
        self._loaded_modules = self._load()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @property
    def path(self) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / _CACHE_FILENAME

    def _load(self) -> dict[str, dict]:
        if self.path is None or not self.path.is_file():
            return {}
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        if payload.get("version") != CACHE_VERSION:
            return {}
        if tuple(payload.get("rules", ())) != self.rule_ids:
            return {}
        project = payload.get("project")
        if isinstance(project, dict) and "digest" in project:
            with self._lock:
                self._project = project
        modules = payload.get("modules")
        return modules if isinstance(modules, dict) else {}

    def save(self) -> None:
        """Atomically persist everything stored during this run."""
        if self.path is None:
            return
        with self._lock:
            payload = {
                "version": CACHE_VERSION,
                "rules": list(self.rule_ids),
                "modules": dict(self._modules),
                "project": self._project,
            }
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.path)

    def clear(self) -> None:
        """Drop the persisted cache file and all in-memory entries."""
        with self._lock:
            self._modules.clear()
            self._project = None
            self._loaded_modules = {}
        if self.path is not None and self.path.exists():
            self.path.unlink()

    # ------------------------------------------------------------------
    # Pass-1 entries
    # ------------------------------------------------------------------
    def lookup_module(
        self, path: str, digest: str
    ) -> tuple[ModuleInfo, list[Finding]] | None:
        entry = self._loaded_modules.get(path)
        if entry is None or entry.get("digest") != digest:
            return None
        try:
            info = ModuleInfo.from_dict(entry["info"])
            findings = [_finding_from_dict(f) for f in entry["findings"]]
        except (KeyError, TypeError, ValueError):
            return None
        # Keep validated entries alive across save() even when untouched.
        with self._lock:
            self._modules.setdefault(path, entry)
        return info, findings

    def store_module(
        self, path: str, digest: str, info: ModuleInfo, findings: list[Finding]
    ) -> None:
        entry = {
            "digest": digest,
            "info": info.to_dict(),
            "findings": [finding.to_dict() for finding in findings],
        }
        with self._lock:
            self._modules[path] = entry

    def cached_digests(self) -> dict[str, str]:
        """Path → digest of every entry loaded from disk."""
        return {
            path: entry.get("digest", "")
            for path, entry in self._loaded_modules.items()
            if isinstance(entry, dict)
        }

    # ------------------------------------------------------------------
    # Pass-2 (project) entry
    # ------------------------------------------------------------------
    def project_digest(self, module_digests: dict[str, str]) -> str:
        hasher = hashlib.sha256()
        for path in sorted(module_digests):
            hasher.update(path.encode("utf-8"))
            hasher.update(module_digests[path].encode("utf-8"))
        hasher.update("|".join(self.rule_ids).encode("utf-8"))
        return hasher.hexdigest()

    def lookup_project(self, digest: str) -> list[Finding] | None:
        with self._lock:
            project = self._project
        if project is None or project.get("digest") != digest:
            return None
        try:
            return [_finding_from_dict(f) for f in project["findings"]]
        except (KeyError, TypeError, ValueError):
            return None

    def store_project(self, digest: str, findings: list[Finding]) -> None:
        entry = {
            "digest": digest,
            "findings": [finding.to_dict() for finding in findings],
        }
        with self._lock:
            self._project = entry
