"""Integer-encoded triple storage with fast batch membership tests.

A :class:`TripleSet` wraps an ``(M, 3)`` int64 array of ``(s, r, o)`` rows.
Membership queries — the hot operation of the fact-discovery algorithm,
which must filter candidate triples against the training graph — are served
by a sorted array of scalar keys ``(s * K + r) * N + o`` and
``numpy.searchsorted``, giving ``O(log M)`` per probe with no Python loops.

Both columns (the triple array and the sorted key index) live behind a
:class:`~repro.kg.storage.StorageBackend`.  The default constructor keeps
the historical in-memory semantics bit-for-bit; :meth:`TripleSet.persist`
writes the canonical columns into any backend and
:meth:`TripleSet.from_backend` reopens them — as zero-copy read-only mmap
views when the backend is a :class:`~repro.kg.storage.MmapBackend`.  A
mmap-backed set pickles as its backend *spec* (a directory pointer), so
worker processes attach the same store files instead of receiving a copy.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from .storage import InMemoryBackend, StorageBackend, open_backend

__all__ = ["TripleSet", "encode_keys"]

_TRIPLES_COL = "triples"
_KEYS_COL = "keys"


def encode_keys(
    triples: np.ndarray, num_entities: int, num_relations: int
) -> np.ndarray:
    """Encode ``(s, r, o)`` rows into unique scalar keys.

    The encoding is a mixed-radix number with radices ``(N·K, N)`` — it is
    injective as long as all ids are within range, which is validated by
    :class:`TripleSet`.
    """
    triples = np.asarray(triples, dtype=np.int64)
    if triples.ndim != 2 or triples.shape[1] != 3:
        raise ValueError(f"expected (M, 3) triples, got shape {triples.shape}")
    return (
        triples[:, 0] * np.int64(num_relations) + triples[:, 1]
    ) * np.int64(num_entities) + triples[:, 2]


class TripleSet:
    """An immutable set of knowledge-graph triples.

    Parameters
    ----------
    triples:
        ``(M, 3)`` integer array of ``(subject, relation, object)`` rows.
    num_entities, num_relations:
        Sizes of the id spaces; used for validation and key encoding.
    """

    def __init__(
        self,
        triples: np.ndarray | Iterable[tuple[int, int, int]],
        num_entities: int,
        num_relations: int,
    ) -> None:
        arr = np.asarray(list(triples) if not isinstance(triples, np.ndarray) else triples)
        if arr.size == 0:
            arr = arr.reshape(0, 3)
        arr = arr.astype(np.int64, copy=True)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(f"expected (M, 3) triples, got shape {arr.shape}")
        if num_entities < 1 or num_relations < 1:
            raise ValueError("num_entities and num_relations must be >= 1")
        if arr.size:
            if arr.min() < 0:
                raise ValueError("triple ids must be non-negative")
            if arr[:, [0, 2]].max() >= num_entities:
                raise ValueError("entity id out of range")
            if arr[:, 1].max() >= num_relations:
                raise ValueError("relation id out of range")

        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)

        # Deduplicate while keeping a canonical (key-sorted) order.
        keys = encode_keys(arr, num_entities, num_relations)
        unique_keys, first = np.unique(keys, return_index=True)
        backend = InMemoryBackend()
        backend.put(_TRIPLES_COL, arr[np.sort(first)])
        backend.put(_KEYS_COL, unique_keys)
        self._attach(backend, "")

    def _attach(self, backend: StorageBackend, prefix: str) -> None:
        """Bind this set to read-only column views from ``backend``."""
        self._backend = backend
        self._prefix = prefix
        self._array = backend.get(f"{prefix}{_TRIPLES_COL}")
        try:
            self._sorted_keys = backend.get(f"{prefix}{_KEYS_COL}")
        except KeyError:
            # Stores written before the key column (or by hand) still
            # load; the index is rebuilt in memory.
            self._sorted_keys = np.sort(
                encode_keys(self._array, self.num_entities, self.num_relations)
            )
            self._sorted_keys.setflags(write=False)

    # ------------------------------------------------------------------
    # Storage backends
    # ------------------------------------------------------------------
    @property
    def backend(self) -> StorageBackend:
        """The storage backend the column views read through."""
        return self._backend

    def persist(self, backend: StorageBackend, prefix: str = "") -> None:
        """Write the canonical columns into ``backend`` under ``prefix``.

        The stored arrays are already deduplicated and key-sorted, so
        :meth:`from_backend` can reopen them without re-validation.
        """
        backend.put(f"{prefix}{_TRIPLES_COL}", np.asarray(self._array))
        backend.put(f"{prefix}{_KEYS_COL}", np.asarray(self._sorted_keys))

    @classmethod
    def from_backend(
        cls,
        backend: StorageBackend,
        num_entities: int,
        num_relations: int,
        prefix: str = "",
    ) -> "TripleSet":
        """Reopen a persisted triple set without copying its columns.

        Trusts the canonical invariants established at persist time
        (deduplicated rows, sorted keys); only the cheap shape/id-space
        checks run.  With a :class:`~repro.kg.storage.MmapBackend` the
        columns stay on disk and are paged in on demand.
        """
        if num_entities < 1 or num_relations < 1:
            raise ValueError("num_entities and num_relations must be >= 1")
        self = cls.__new__(cls)
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self._attach(backend, prefix)
        arr = self._array
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(f"expected (M, 3) triples, got shape {arr.shape}")
        if self._sorted_keys.shape != (arr.shape[0],):
            raise ValueError(
                f"key column shape {self._sorted_keys.shape} does not match "
                f"{arr.shape[0]} triples"
            )
        return self

    def __reduce__(self):
        try:
            spec = self._backend.spec()
        except TypeError:
            # In-memory sets pickle by value, as they always have.
            return (
                _rebuild_in_memory,
                (
                    np.asarray(self._array),
                    self.num_entities,
                    self.num_relations,
                ),
            )
        return (
            _rebuild_from_spec,
            (spec, self.num_entities, self.num_relations, self._prefix),
        )

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._array.shape[0]

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        for row in self._array:
            yield (int(row[0]), int(row[1]), int(row[2]))

    def __contains__(self, triple: tuple[int, int, int]) -> bool:
        return bool(self.contains(np.asarray([triple]))[0])

    def __repr__(self) -> str:
        return (
            f"TripleSet(num_triples={len(self)}, "
            f"num_entities={self.num_entities}, num_relations={self.num_relations})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TripleSet):
            return NotImplemented
        return (
            self.num_entities == other.num_entities
            and self.num_relations == other.num_relations
            and np.array_equal(self._sorted_keys, other._sorted_keys)
        )

    @property
    def array(self) -> np.ndarray:
        """The ``(M, 3)`` read-only triple array."""
        return self._array

    @property
    def subjects(self) -> np.ndarray:
        return self._array[:, 0]

    @property
    def relations(self) -> np.ndarray:
        return self._array[:, 1]

    @property
    def objects(self) -> np.ndarray:
        return self._array[:, 2]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def contains(self, triples: np.ndarray) -> np.ndarray:
        """Vectorised membership test: boolean mask for ``(C, 3)`` rows."""
        triples = np.asarray(triples, dtype=np.int64)
        if triples.size == 0:
            return np.zeros(0, dtype=bool)
        keys = encode_keys(triples, self.num_entities, self.num_relations)
        pos = np.searchsorted(self._sorted_keys, keys)
        pos = np.minimum(pos, len(self._sorted_keys) - 1) if len(self) else pos
        if len(self) == 0:
            return np.zeros(len(keys), dtype=bool)
        return self._sorted_keys[pos] == keys

    def by_relation(self, relation: int) -> np.ndarray:
        """All triples with the given relation id, as an ``(m, 3)`` array."""
        return self._array[self._array[:, 1] == relation]

    def unique_relations(self) -> np.ndarray:
        """Sorted array of relation ids appearing in this set."""
        return np.unique(self._array[:, 1])

    def unique_entities(self) -> np.ndarray:
        """Sorted array of entity ids appearing as subject or object."""
        return np.unique(self._array[:, [0, 2]])

    def sp_index(self) -> dict[tuple[int, int], np.ndarray]:
        """Map ``(s, r)`` → array of true objects (filtered-ranking index)."""
        index: dict[tuple[int, int], list[int]] = {}
        for s, r, o in self._array:
            index.setdefault((int(s), int(r)), []).append(int(o))
        return {k: np.asarray(v, dtype=np.int64) for k, v in index.items()}

    def po_index(self) -> dict[tuple[int, int], np.ndarray]:
        """Map ``(r, o)`` → array of true subjects (filtered-ranking index)."""
        index: dict[tuple[int, int], list[int]] = {}
        for s, r, o in self._array:
            index.setdefault((int(r), int(o)), []).append(int(s))
        return {k: np.asarray(v, dtype=np.int64) for k, v in index.items()}

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def union(self, other: "TripleSet") -> "TripleSet":
        """Union of two triple sets over the same id spaces."""
        self._check_compatible(other)
        merged = np.concatenate([self._array, other._array], axis=0)
        return TripleSet(merged, self.num_entities, self.num_relations)

    def difference(self, other: "TripleSet") -> "TripleSet":
        """Triples in ``self`` that are not in ``other``."""
        self._check_compatible(other)
        mask = ~other.contains(self._array)
        return TripleSet(self._array[mask], self.num_entities, self.num_relations)

    def intersection(self, other: "TripleSet") -> "TripleSet":
        """Triples in both sets."""
        self._check_compatible(other)
        mask = other.contains(self._array)
        return TripleSet(self._array[mask], self.num_entities, self.num_relations)

    def _check_compatible(self, other: "TripleSet") -> None:
        if (
            self.num_entities != other.num_entities
            or self.num_relations != other.num_relations
        ):
            raise ValueError(
                "triple sets have incompatible id spaces: "
                f"({self.num_entities}, {self.num_relations}) vs "
                f"({other.num_entities}, {other.num_relations})"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def complement_size(self) -> int:
        """Number of triples in the complement graph, |E|²·|R| − |G|.

        This is the quantity from the paper's introduction that makes
        exhaustive fact discovery infeasible (533 × 10⁹ for YAGO3-10).
        """
        return self.num_entities**2 * self.num_relations - len(self)

    def density(self) -> float:
        """Fraction of all possible triples that are present."""
        return len(self) / (self.num_entities**2 * self.num_relations)


def _rebuild_in_memory(
    array: np.ndarray, num_entities: int, num_relations: int
) -> TripleSet:
    """Unpickle target for in-memory sets (rows are already canonical)."""
    return TripleSet(array, num_entities, num_relations)


def _rebuild_from_spec(
    spec: dict, num_entities: int, num_relations: int, prefix: str
) -> TripleSet:
    """Unpickle target for store-backed sets: re-attach, don't copy."""
    return TripleSet.from_backend(
        open_backend(spec), num_entities, num_relations, prefix
    )
