"""Fault-injection harness tests: the test scaffolding itself must work."""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience import FaultInjectedError, FaultPlan, atomic_write_bytes, faults


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.clear()


class TestTrigger:
    def test_noop_without_plan(self):
        faults.trigger("train_epoch", 3)  # must not raise

    def test_fires_once_then_exhausts(self):
        with faults.inject(FaultPlan().fail("train_epoch", match="3")) as plan:
            faults.trigger("train_epoch", 0)
            with pytest.raises(FaultInjectedError):
                faults.trigger("train_epoch", 3)
            faults.trigger("train_epoch", 3)  # budget of 1 spent
            assert plan.fired() == 1

    def test_site_and_token_patterns(self):
        plan = FaultPlan().fail("matrix_cell", match="*distmult*")
        with faults.inject(plan):
            faults.trigger("matrix_cell", "wn18rr-like/transe/uniform_random")
            with pytest.raises(FaultInjectedError):
                faults.trigger("matrix_cell", "wn18rr-like/distmult/uniform_random")

    def test_unlimited_budget(self):
        with faults.inject(FaultPlan().fail("site", times=-1)) as plan:
            for _ in range(5):
                with pytest.raises(FaultInjectedError):
                    faults.trigger("site", "x")
            assert plan.fired() == 5

    def test_custom_exception_type(self):
        with faults.inject(FaultPlan().fail("site", exc=MemoryError)):
            with pytest.raises(MemoryError):
                faults.trigger("site")

    def test_inject_clears_plan_even_on_error(self):
        with pytest.raises(RuntimeError):
            with faults.inject(FaultPlan().fail("site")):
                raise RuntimeError("test body blew up")
        assert faults.active_plan() is None


class TestCorruptFile:
    def test_noop_without_plan(self, tmp_path):
        path = tmp_path / "file.npz"
        atomic_write_bytes(path, b"x" * 100)
        assert path.read_bytes() == b"x" * 100

    def test_flip_damages_published_file(self, tmp_path):
        path = tmp_path / "file.npz"
        with faults.inject(FaultPlan().corrupt(match="*.npz")) as plan:
            atomic_write_bytes(path, b"x" * 100)
            assert plan.fired() == 1
        data = path.read_bytes()
        assert len(data) == 100
        assert data != b"x" * 100

    def test_truncate_chops_the_tail(self, tmp_path):
        path = tmp_path / "file.npz"
        with faults.inject(FaultPlan().corrupt(match="*.npz", mode="truncate")):
            atomic_write_bytes(path, b"x" * 99)
        assert len(path.read_bytes()) == 33

    def test_pattern_spares_other_files(self, tmp_path):
        with faults.inject(FaultPlan().corrupt(match="*distmult*")) as plan:
            atomic_write_bytes(tmp_path / "transe.npz", b"y" * 50)
            assert plan.fired() == 0
        assert (tmp_path / "transe.npz").read_bytes() == b"y" * 50

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="flip/truncate"):
            FaultPlan().corrupt(mode="shred")


class TestStall:
    def test_reports_virtual_seconds_once(self):
        with faults.inject(FaultPlan().stall("get_trained_model", 900.0)):
            assert faults.stall_seconds("get_trained_model", "0") == 900.0
            assert faults.stall_seconds("get_trained_model", "1") == 0.0

    def test_zero_without_plan(self):
        assert faults.stall_seconds("anything") == 0.0


class TestPlanBuilder:
    def test_builder_chains(self):
        plan = FaultPlan().fail("a").corrupt().stall("b", 5.0)
        assert len(plan.faults) == 3
        assert plan.fired() == 0
