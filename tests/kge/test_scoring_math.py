"""Each model's scoring function checked against its textbook formula."""

from __future__ import annotations

import numpy as np

from repro.kge import create_model

RNG = np.random.default_rng(13)


def _triples(batch: int, n: int, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    return (
        RNG.integers(0, n, batch),
        RNG.integers(0, k, batch),
        RNG.integers(0, n, batch),
    )


def test_transe_l1_formula():
    m = create_model("transe", num_entities=9, num_relations=3, dim=6, norm="l1")
    s, r, o = _triples(5, 9, 3)
    ent, rel = m.entity_matrix(), m.relation_matrix()
    expected = -np.abs(ent[s] + rel[r] - ent[o]).sum(axis=1)
    np.testing.assert_allclose(
        m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-12
    )


def test_transe_l2_formula():
    m = create_model("transe", num_entities=9, num_relations=3, dim=6, norm="l2")
    s, r, o = _triples(5, 9, 3)
    ent, rel = m.entity_matrix(), m.relation_matrix()
    expected = -np.sqrt(((ent[s] + rel[r] - ent[o]) ** 2).sum(axis=1) + 1e-12)
    np.testing.assert_allclose(
        m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-9
    )


def test_distmult_formula():
    m = create_model("distmult", num_entities=9, num_relations=3, dim=6)
    s, r, o = _triples(5, 9, 3)
    ent, rel = m.entity_matrix(), m.relation_matrix()
    expected = np.einsum("bd,bd,bd->b", ent[s], rel[r], ent[o])
    np.testing.assert_allclose(
        m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-12
    )


def test_distmult_is_symmetric():
    """DistMult cannot distinguish (s, r, o) from (o, r, s)."""
    m = create_model("distmult", num_entities=9, num_relations=3, dim=6)
    s, r, o = _triples(8, 9, 3)
    forward = m.scores_spo(np.stack([s, r, o], 1))
    backward = m.scores_spo(np.stack([o, r, s], 1))
    np.testing.assert_allclose(forward, backward, rtol=1e-12)


def test_complex_formula():
    m = create_model("complex", num_entities=9, num_relations=3, dim=8)
    s, r, o = _triples(5, 9, 3)
    h = 4
    ent, rel = m.entity_matrix(), m.relation_matrix()
    s_c = ent[s, :h] + 1j * ent[s, h:]
    r_c = rel[r, :h] + 1j * rel[r, h:]
    o_c = ent[o, :h] + 1j * ent[o, h:]
    expected = np.real(np.einsum("bd,bd,bd->b", s_c, r_c, np.conj(o_c)))
    np.testing.assert_allclose(
        m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-10
    )


def test_complex_can_be_asymmetric():
    m = create_model("complex", num_entities=9, num_relations=3, dim=8)
    s, r, o = _triples(8, 9, 3)
    forward = m.scores_spo(np.stack([s, r, o], 1))
    backward = m.scores_spo(np.stack([o, r, s], 1))
    assert not np.allclose(forward, backward)


def test_rescal_formula():
    m = create_model("rescal", num_entities=9, num_relations=3, dim=5)
    s, r, o = _triples(5, 9, 3)
    ent = m.entity_matrix()
    rel = m.relation_matrix().reshape(3, 5, 5)
    expected = np.einsum("bi,bij,bj->b", ent[s], rel[r], ent[o])
    np.testing.assert_allclose(
        m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-10
    )


def test_hole_formula():
    m = create_model("hole", num_entities=9, num_relations=3, dim=8)
    s, r, o = _triples(5, 9, 3)
    ent, rel = m.entity_matrix(), m.relation_matrix()
    d = 8
    corr = np.zeros((5, d))
    for k in range(d):
        for i in range(d):
            corr[:, k] += ent[s][:, i] * ent[o][:, (i + k) % d]
    expected = (rel[r] * corr).sum(axis=1)
    np.testing.assert_allclose(
        m.scores_spo(np.stack([s, r, o], 1)), expected, rtol=1e-9
    )


def test_hole_equals_complex_in_expressivity_smoke():
    """Not a theorem check — just that HolE produces asymmetric scores,
    the property that separates it from DistMult."""
    m = create_model("hole", num_entities=9, num_relations=3, dim=8)
    s, r, o = _triples(8, 9, 3)
    forward = m.scores_spo(np.stack([s, r, o], 1))
    backward = m.scores_spo(np.stack([o, r, s], 1))
    assert not np.allclose(forward, backward)


def test_conve_spo_matches_sp_column():
    m = create_model("conve", num_entities=7, num_relations=2, dim=16)
    m.eval()
    s = np.asarray([0, 3, 5])
    r = np.asarray([0, 1, 1])
    o = np.asarray([2, 2, 6])
    rows = m.scores_sp(s, r)
    direct = m.scores_spo(np.stack([s, r, o], 1))
    np.testing.assert_allclose(rows[np.arange(3), o], direct, rtol=1e-10)
