"""Negative-sampler tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kg import TripleSet
from repro.kge import NegativeSampler


@pytest.fixture()
def train_set() -> TripleSet:
    rng = np.random.default_rng(0)
    triples = np.stack(
        [rng.integers(0, 20, 60), rng.integers(0, 3, 60), rng.integers(0, 20, 60)],
        axis=1,
    )
    return TripleSet(triples, 20, 3)


class TestShapes:
    def test_output_shape(self, train_set):
        sampler = NegativeSampler(train_set, num_negatives=4, seed=1)
        out = sampler.sample(train_set.array[:10])
        assert out.shape == (10, 4, 3)

    def test_relations_preserved(self, train_set):
        sampler = NegativeSampler(train_set, num_negatives=4, seed=1)
        pos = train_set.array[:10]
        out = sampler.sample(pos)
        np.testing.assert_array_equal(
            out[:, :, 1], np.repeat(pos[:, 1:2], 4, axis=1)
        )

    def test_object_mode_keeps_subjects(self, train_set):
        sampler = NegativeSampler(
            train_set, num_negatives=3, corrupt="object", seed=1
        )
        pos = train_set.array[:8]
        out = sampler.sample(pos)
        np.testing.assert_array_equal(out[:, :, 0], np.repeat(pos[:, :1], 3, axis=1))

    def test_subject_mode_keeps_objects(self, train_set):
        sampler = NegativeSampler(
            train_set, num_negatives=3, corrupt="subject", seed=1
        )
        pos = train_set.array[:8]
        out = sampler.sample(pos)
        np.testing.assert_array_equal(out[:, :, 2], np.repeat(pos[:, 2:], 3, axis=1))

    def test_both_mode_corrupts_exactly_one_slot(self, train_set):
        sampler = NegativeSampler(
            train_set, num_negatives=4, corrupt="both", filter_true=False, seed=1
        )
        pos = train_set.array[:12]
        out = sampler.sample(pos)
        expanded = np.repeat(pos[:, None, :], 4, axis=1)
        subject_changed = out[:, :, 0] != expanded[:, :, 0]
        object_changed = out[:, :, 2] != expanded[:, :, 2]
        # Never both slots changed in a single corruption.
        assert not np.any(subject_changed & object_changed)


class TestBernoulli:
    def test_probabilities_follow_relation_shape(self):
        # Relation 0: one head with many tails (tph high) -> corrupt the
        # head more often, i.e. the object-corruption probability is low.
        triples = [[0, 0, i] for i in range(1, 9)]
        # Relation 1: many heads, one tail (hpt high) -> corrupt the tail
        # more often.
        triples += [[i, 1, 9] for i in range(1, 9)]
        ts = TripleSet(np.asarray(triples), 10, 2)
        sampler = NegativeSampler(ts, corrupt="bernoulli", seed=0)
        probs = sampler._object_corruption_prob
        assert probs[0] < 0.2
        assert probs[1] > 0.8

    def test_balanced_relation_is_half(self):
        triples = [[0, 0, 1], [1, 0, 2], [2, 0, 3]]
        ts = TripleSet(np.asarray(triples), 5, 1)
        sampler = NegativeSampler(ts, corrupt="bernoulli", seed=0)
        assert sampler._object_corruption_prob[0] == pytest.approx(0.5)

    def test_corrupts_exactly_one_slot(self, train_set):
        sampler = NegativeSampler(
            train_set, num_negatives=4, corrupt="bernoulli",
            filter_true=False, seed=1,
        )
        pos = train_set.array[:12]
        out = sampler.sample(pos)
        expanded = np.repeat(pos[:, None, :], 4, axis=1)
        subject_changed = out[:, :, 0] != expanded[:, :, 0]
        object_changed = out[:, :, 2] != expanded[:, :, 2]
        assert not np.any(subject_changed & object_changed)


class TestFiltering:
    def test_filter_reduces_true_hits(self):
        # Tiny entity space: accidental positives are very likely without
        # filtering.
        triples = np.asarray([[s, 0, o] for s in range(3) for o in range(3) if s != o])
        ts = TripleSet(triples, 4, 1)
        pos = ts.array
        unfiltered = NegativeSampler(ts, num_negatives=8, filter_true=False, seed=0)
        filtered = NegativeSampler(ts, num_negatives=8, filter_true=True, seed=0)
        hits_unfiltered = ts.contains(unfiltered.sample(pos).reshape(-1, 3)).sum()
        hits_filtered = ts.contains(filtered.sample(pos).reshape(-1, 3)).sum()
        assert hits_filtered <= hits_unfiltered

    def test_deterministic_given_seed(self, train_set):
        a = NegativeSampler(train_set, num_negatives=4, seed=5)
        b = NegativeSampler(train_set, num_negatives=4, seed=5)
        pos = train_set.array[:10]
        np.testing.assert_array_equal(a.sample(pos), b.sample(pos))


class TestValidation:
    def test_bad_num_negatives(self, train_set):
        with pytest.raises(ValueError):
            NegativeSampler(train_set, num_negatives=0)

    def test_bad_corrupt_mode(self, train_set):
        with pytest.raises(ValueError):
            NegativeSampler(train_set, corrupt="everything")
