"""Test-only fault injection: scripted failures at instrumented points.

Production code calls the module-level hooks (:func:`trigger`,
:func:`corrupt_file`, :func:`stall_seconds`) at well-known *sites*; with
no plan installed every hook is a near-free early return.  Tests install
a :class:`FaultPlan` (usually via the :func:`inject` context manager) to
prove each recovery path:

* ``plan.fail("train_epoch", match="3")`` — raise when training reaches
  epoch 3 (a crashed training job);
* ``plan.fail("matrix_cell", match="*distmult*")`` — kill a campaign
  mid-cell;
* ``plan.corrupt(match="*.npz")`` — flip bytes in a checkpoint right
  after a save completes (a torn write the checksum must catch);
* ``plan.stall("get_trained_model", 900.0)`` — make an attempt appear to
  overshoot its deadline inside :func:`~repro.resilience.retry.with_retries`
  without actually sleeping.

Instrumented sites: ``train_epoch`` (token = epoch index),
``matrix_cell`` (token = ``dataset/model/strategy``), any
``with_retries`` label (token = attempt index), and every path published
through :func:`~repro.resilience.atomic.atomic_write`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterator

from .errors import FaultInjectedError

__all__ = [
    "FaultPlan",
    "install",
    "clear",
    "active_plan",
    "inject",
    "trigger",
    "corrupt_file",
    "stall_seconds",
]


@dataclass
class _Fault:
    kind: str  # "fail" | "corrupt" | "stall"
    site: str
    pattern: str
    times: int  # remaining firings; < 0 means unlimited
    exc: type[Exception] = FaultInjectedError
    seconds: float = 0.0
    mode: str = "flip"  # corrupt mode: "flip" | "truncate"
    fired: int = 0

    def matches(self, kind: str, site: str, token: str) -> bool:
        return (
            self.kind == kind
            and self.times != 0
            and fnmatch(site, self.site)
            and fnmatch(token, self.pattern)
        )

    def consume(self) -> None:
        self.fired += 1
        if self.times > 0:
            self.times -= 1


@dataclass
class FaultPlan:
    """A scripted set of faults; builder methods chain."""

    faults: list[_Fault] = field(default_factory=list)

    def fail(
        self,
        site: str,
        match: str = "*",
        times: int = 1,
        exc: type[Exception] = FaultInjectedError,
    ) -> "FaultPlan":
        """Raise ``exc`` the next ``times`` times ``site``/``match`` triggers."""
        self.faults.append(_Fault("fail", site, match, times, exc=exc))
        return self

    def corrupt(
        self, match: str = "*", times: int = 1, mode: str = "flip"
    ) -> "FaultPlan":
        """Damage files matching ``match`` right after an atomic publish.

        ``mode="flip"`` inverts a byte run mid-file (checksum-level
        corruption); ``mode="truncate"`` chops the tail (zip-level).
        """
        if mode not in ("flip", "truncate"):
            raise ValueError(f"corrupt mode must be flip/truncate, got {mode!r}")
        self.faults.append(_Fault("corrupt", "save", match, times, mode=mode))
        return self

    def stall(
        self, site: str, seconds: float, match: str = "*", times: int = 1
    ) -> "FaultPlan":
        """Report ``seconds`` of virtual stall at a retry site."""
        self.faults.append(_Fault("stall", site, match, times, seconds=seconds))
        return self

    def fired(self) -> int:
        """Total fault firings so far (did the plan actually trigger?)."""
        return sum(fault.fired for fault in self.faults)

    def _consume(self, kind: str, site: str, token: str) -> _Fault | None:
        for fault in self.faults:
            if fault.matches(kind, site, token):
                fault.consume()
                return fault
        return None


_ACTIVE: FaultPlan | None = None


def install(plan: FaultPlan) -> None:
    """Activate a plan globally (tests only; see :func:`inject`)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    """Deactivate any installed plan."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> FaultPlan | None:
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    install(plan)
    try:
        yield plan
    finally:
        clear()


def trigger(site: str, token: str = "") -> None:
    """Raise if the active plan scheduled a failure at this point."""
    if _ACTIVE is None:
        return
    fault = _ACTIVE._consume("fail", site, str(token))
    if fault is not None:
        raise fault.exc(f"injected fault at {site}:{token}")


def corrupt_file(path: Path | str) -> bool:
    """Damage ``path`` if the active plan scheduled save corruption."""
    if _ACTIVE is None:
        return False
    fault = _ACTIVE._consume("corrupt", "save", str(path))
    if fault is None:
        return False
    path = Path(path)
    data = bytearray(path.read_bytes())
    if fault.mode == "truncate":
        damaged = bytes(data[: max(len(data) // 3, 1)])
    else:
        middle = len(data) // 2
        for offset in range(middle, min(middle + 32, len(data))):
            data[offset] ^= 0xFF
        damaged = bytes(data)
    path.write_bytes(damaged)
    return True


def stall_seconds(site: str, token: str = "") -> float:
    """Virtual seconds an attempt at ``site`` should appear to take."""
    if _ACTIVE is None:
        return 0.0
    fault = _ACTIVE._consume("stall", site, str(token))
    return fault.seconds if fault is not None else 0.0
