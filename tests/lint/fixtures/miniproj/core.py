"""Pipeline entry dispatching through a method receiver into util."""

from .util import draw

__all__ = ["Engine", "compute", "discover_facts"]


class Engine:
    def run(self, items):
        return self.sample(items)

    def sample(self, items):
        return draw(items)


def compute(items):
    engine = Engine()
    return engine.run(items)


def discover_facts(items):
    return compute(items)
