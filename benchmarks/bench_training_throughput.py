"""Training throughput — row-sparse gradient fast path vs dense baseline.

A negative-sampling batch touches a few hundred embedding rows out of
thousands, yet the dense path scatter-adds every batch gradient into a
full ``(num_entities, dim)`` array and the optimizers then sweep the
whole table.  With ``sparse_grads`` enabled the tape emits deduplicated
:class:`repro.autograd.SparseGrad` row bundles and every optimizer
applies a row-wise kernel instead — bit-identical by construction (plain
SGD, Adagrad) or by exact lazy replay (SGD momentum, Adam).

Two measurements, both written to
``benchmarks/results/BENCH_training.json``:

* **optimizer-step microbenchmark** — one ``(30k, 64)`` embedding table,
  a 512-row batch gradient, dense vs sparse ``step()`` for all four
  optimizers.  Target: ≥5× steps/sec on the row-sparse path.
* **epoch throughput** — full ``train_model`` negative-sampling epochs
  on a 30k-entity synthetic graph (mid paper scale: the source paper's
  graphs span 14k–123k entities), ``sparse_grads="off"`` vs the shipping
  ``"auto"`` policy, asserting the resulting models are bit-identical.
  Target: ≥2×, gated on Adagrad (the optimizer whose dense step is the
  most expensive full-table sweep).  Plain SGD lands between ~1.7× and
  ~2.8× depending on the model and is recorded ungated.  Adam is gated
  at ≥1.0×: its *exact* lazy catch-up replays every deferred per-row
  step verbatim — the price of bitwise identity — so over a full epoch
  it conserves the dense path's total update work and mostly saves the
  dense gradient materialisation in the backward pass.  Even for TransE
  (whose per-batch row renormalisation forces a full flush every step)
  the fused one-step replay kernel keeps the sparse path ahead of dense,
  so the ``auto`` policy now enables it there too.
"""

from __future__ import annotations

import json
import time

import numpy as np
from common import RESULTS_DIR, save_and_print

from repro.autograd import SGD, Adagrad, Adam, SparseGrad, Tensor
from repro.experiments import format_table
from repro.kg import KGProfile, generate_kg
from repro.kge import TrainConfig, train_model
from repro.kge.base import create_model

#: Scaled so the sparse/dense row ratio (~512/30000) matches the paper's
#: workloads (batches of hundreds against 14k–123k entity vocabularies).
NUM_ENTITIES = 30_000
DIM = 64
BATCH_ROWS = 512

BENCH_PROFILE = KGProfile(
    name="bench-training",
    num_entities=NUM_ENTITIES,
    num_relations=24,
    num_triples=36_000,
    num_types=8,
    seed=99,
)

OPTIMIZERS = {
    "sgd": lambda params: SGD(params, lr=0.01),
    "sgd-momentum": lambda params: SGD(params, lr=0.01, momentum=0.9),
    "adagrad": lambda params: Adagrad(params, lr=0.01),
    "adam": lambda params: Adam(params, lr=0.01),
}

EPOCH_MODELS = ["transe", "distmult", "complex"]


def _steps_per_sec(make_opt, sparse: bool, steps: int = 60) -> float:
    rng = np.random.default_rng(17)
    param = Tensor(rng.standard_normal((NUM_ENTITIES, DIM)), requires_grad=True)
    param.sparse_grad = sparse
    optimizer = make_opt([param])
    indices = rng.integers(0, NUM_ENTITIES, size=BATCH_ROWS)
    values = rng.standard_normal((BATCH_ROWS, DIM))
    if sparse:
        grad = SparseGrad.from_indices(indices, values, param.shape)
    else:
        grad = np.zeros(param.shape)
        np.add.at(grad, indices, values)
    # Warm up (engages the lazy machinery and the fused scratch buffers).
    param.grad = grad
    optimizer.step()
    t0 = time.perf_counter()
    for _ in range(steps):
        param.grad = grad
        optimizer.step()
    return steps / (time.perf_counter() - t0)


def _train_seconds(
    graph, model_name: str, optimizer: str, sparse: bool
) -> tuple[float, dict, bool]:
    model = create_model(
        model_name,
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=DIM,
        seed=1,
    )
    config = TrainConfig(
        job="negative_sampling",
        loss="margin",
        epochs=2,
        batch_size=BATCH_ROWS,
        lr=0.01,
        optimizer=optimizer,
        num_negatives=4,
        seed=5,
        sparse_grads="auto" if sparse else "off",
    )
    t0 = time.perf_counter()
    train_model(model, graph, config)
    elapsed = time.perf_counter() - t0
    enabled = any(p.sparse_grad for p in model.sparse_entity_parameters())
    return elapsed, model.state_dict(), enabled


def test_training_throughput():
    payload: dict[str, object] = {
        "num_entities": NUM_ENTITIES,
        "dim": DIM,
        "batch_rows": BATCH_ROWS,
    }

    # --- Optimizer-step microbenchmark.
    step_rows = []
    for name, make_opt in OPTIMIZERS.items():
        dense = _steps_per_sec(make_opt, sparse=False)
        sparse = _steps_per_sec(make_opt, sparse=True)
        step_rows.append(
            {
                "optimizer": name,
                "dense_steps_per_s": round(dense, 1),
                "sparse_steps_per_s": round(sparse, 1),
                "speedup": round(sparse / dense, 2),
            }
        )
    assert all(row["speedup"] >= 5.0 for row in step_rows), step_rows

    # --- Epoch throughput end to end, pinned bit-identical.  The ≥2×
    # target is gated on adagrad; sgd and adam are recorded without a
    # gate (see module docstring).
    graph = generate_kg(BENCH_PROFILE)
    epoch_rows = []
    for model_name in EPOCH_MODELS:
        for optimizer in ("sgd", "adagrad", "adam"):
            dense_s, dense_state, _ = _train_seconds(
                graph, model_name, optimizer, sparse=False
            )
            sparse_s, sparse_state, auto_enabled = _train_seconds(
                graph, model_name, optimizer, sparse=True
            )
            for key in dense_state:
                np.testing.assert_array_equal(
                    dense_state[key],
                    sparse_state[key],
                    err_msg=f"{model_name}:{optimizer}:{key}",
                )
            epoch_rows.append(
                {
                    "model": model_name,
                    "optimizer": optimizer,
                    "dense_s_per_epoch": round(dense_s / 2, 3),
                    "sparse_s_per_epoch": round(sparse_s / 2, 3),
                    "speedup": round(dense_s / sparse_s, 2),
                    "auto_enabled": auto_enabled,
                    "bit_identical": True,
                }
            )
    assert all(
        row["speedup"] >= 2.0 for row in epoch_rows if row["optimizer"] == "adagrad"
    ), epoch_rows
    assert all(
        row["speedup"] >= 1.0 for row in epoch_rows if row["optimizer"] == "adam"
    ), epoch_rows

    payload["optimizer_step"] = step_rows
    payload["epoch_throughput"] = epoch_rows
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_training.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    save_and_print(
        "training_throughput",
        format_table(
            step_rows,
            title=f"optimizer step, ({NUM_ENTITIES}, {DIM}) table, "
            f"{BATCH_ROWS}-row batch gradient (60 steps)",
        )
        + "\n\n"
        + format_table(
            epoch_rows,
            title=f"train_model negative sampling on {BENCH_PROFILE.name} "
            f"({NUM_ENTITIES} entities), dense vs sparse_grads (2 epochs)",
        ),
    )
