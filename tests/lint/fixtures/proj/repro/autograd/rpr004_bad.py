"""RPR004 bad fixture: broadcastable binop with unguarded _accumulate."""


def add(a, b):
    out_data = a.data + b.data

    def backward(grad):
        a._accumulate(grad)
        b._accumulate(grad)

    return a._make(out_data, (a, b), backward)
