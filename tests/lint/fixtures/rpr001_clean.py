"""RPR001 clean fixture: randomness flows through explicit generators."""

from random import Random

import numpy as np


def sample_ids(n, rng):
    local = Random(12345)
    return rng.choice(n, size=3), local.randint(0, n)


def make_rng(seed):
    return np.random.default_rng(seed)
