"""Process-spanning fault activation: env transport, kills, stalls, torn appends.

The kill test spawns a real child process (the module-level target is
importable from the spawn bootstrap) and asserts the parent observes a
SIGKILL death, never an exception — the contract the scheduler's crash
path is built on.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro import faults
from repro.faults import FAULT_PLAN_ENV, FaultPlan
from repro.resilience import FaultInjectedError


@pytest.fixture(autouse=True)
def _pristine_runtime(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()


class TestEnvTransport:
    def test_export_sets_and_removes_variable(self):
        plan = FaultPlan().fail("site")
        assert FAULT_PLAN_ENV not in os.environ
        with faults.export_to_env(plan):
            payload = os.environ[FAULT_PLAN_ENV]
            assert FaultPlan.from_payload(payload).faults[0].site == "site"
        assert FAULT_PLAN_ENV not in os.environ

    def test_export_restores_previous_payload(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "previous-payload")
        with faults.export_to_env(FaultPlan().fail("site")):
            assert os.environ[FAULT_PLAN_ENV] != "previous-payload"
        assert os.environ[FAULT_PLAN_ENV] == "previous-payload"

    def test_export_none_is_a_noop(self):
        with faults.export_to_env(None):
            assert FAULT_PLAN_ENV not in os.environ

    def test_install_from_env_round_trips(self, monkeypatch):
        monkeypatch.setenv(
            FAULT_PLAN_ENV, FaultPlan().fail("train_epoch", match="2").to_payload()
        )
        plan = faults.install_from_env()
        assert plan is not None
        assert faults.active_plan() is plan
        with pytest.raises(FaultInjectedError):
            faults.trigger("train_epoch", 2)

    def test_install_from_env_without_payload_is_noop(self):
        assert faults.install_from_env() is None
        assert faults.active_plan() is None

    def test_env_never_overrides_explicit_install(self, monkeypatch):
        explicit = FaultPlan().fail("explicit")
        faults.install(explicit)
        monkeypatch.setenv(FAULT_PLAN_ENV, FaultPlan().fail("env").to_payload())
        assert faults.install_from_env() is explicit
        assert faults.active_plan() is explicit

    def test_malformed_payload_ignored(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
        assert faults.install_from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, '{"version": 999, "faults": []}')
        assert faults.install_from_env() is None
        assert faults.active_plan() is None


class TestTornAppend:
    def test_consumes_matching_fault_once(self):
        with faults.inject(FaultPlan().torn(match="cell_succeeded")) as plan:
            assert faults.torn_append("cell_started") is False
            assert faults.torn_append("cell_succeeded") is True
            assert faults.torn_append("cell_succeeded") is False
            assert plan.fired() == 1

    def test_false_without_plan(self):
        assert faults.torn_append("anything") is False


class TestStallFlavours:
    def test_virtual_stall_does_not_sleep(self):
        with faults.inject(FaultPlan().stall("site", 900.0)):
            started = time.monotonic()
            assert faults.stall_seconds("site") == 900.0
            faults.trigger("site")  # virtual stalls never sleep at trigger
            assert time.monotonic() - started < 5.0

    def test_wall_stall_sleeps_at_trigger(self):
        with faults.inject(FaultPlan().stall("site", 0.2, wall=True)) as plan:
            assert faults.stall_seconds("site") == 0.0  # wall ≠ virtual
            started = time.monotonic()
            faults.trigger("site")
            assert time.monotonic() - started >= 0.2
            assert plan.fired() == 1


def _doomed_child() -> None:
    faults.install_from_env()
    faults.trigger("worker_dispatch", "wn18rr-like/distmult/uniform_random")
    os._exit(0)  # unreachable when the kill fires


class TestKill:
    def test_kill_fault_sigkills_a_spawned_child(self):
        plan = FaultPlan().kill("worker_dispatch", match="*distmult*")
        ctx = multiprocessing.get_context("spawn")
        with faults.export_to_env(plan):
            child = ctx.Process(target=_doomed_child)
            child.start()
            child.join(timeout=60.0)
        assert child.exitcode == -signal.SIGKILL

    def test_unmatched_child_exits_cleanly(self):
        plan = FaultPlan().kill("worker_dispatch", match="*transe*")
        ctx = multiprocessing.get_context("spawn")
        with faults.export_to_env(plan):
            child = ctx.Process(target=_doomed_child)
            child.start()
            child.join(timeout=60.0)
        assert child.exitcode == 0
