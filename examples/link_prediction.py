"""Link prediction vs fact discovery — the paper's §1 distinction.

Link prediction answers *given* queries ("which disease does drug X
target?"); fact discovery needs no queries at all.  This example trains
all five paper models on one replica, reports the standard
link-prediction leaderboard (MRR / Hits@k / triple-classification
accuracy), and then shows that the same trained model can drive fact
discovery with zero input queries.

Usage::

    python examples/link_prediction.py [dataset]
"""

from __future__ import annotations

import sys

from repro import discover_facts, evaluate_ranking
from repro.experiments import PAPER_MODELS, format_table, get_trained_model
from repro.kg import load_dataset
from repro.kge import triple_classification


def main(dataset: str = "fb15k237-like") -> None:
    graph = load_dataset(dataset)
    print(f"{graph}\n")

    rows = []
    models = {}
    for name in PAPER_MODELS:
        print(f"training/loading {name}...")
        model = get_trained_model(dataset, name, graph=graph)
        models[name] = model
        metrics = evaluate_ranking(model, graph, split="test")
        classification = triple_classification(model, graph, seed=0)
        rows.append(
            {
                "model": name,
                "MRR": round(metrics.mrr, 4),
                "Hits@1": round(metrics.hits[1], 4),
                "Hits@3": round(metrics.hits[3], 4),
                "Hits@10": round(metrics.hits[10], 4),
                "MR": round(metrics.mean_rank, 1),
                "cls_acc": round(classification["test_accuracy"], 4),
            }
        )

    rows.sort(key=lambda r: r["MRR"], reverse=True)
    print()
    print(format_table(rows, title=f"Link prediction on {dataset} (filtered, object-side)"))

    best = rows[0]["model"]
    print(
        f"\nfact discovery with the best model ({best}) — no queries needed:"
    )
    result = discover_facts(
        models[best], graph, strategy="cluster_triangles",
        top_n=50, max_candidates=500, seed=0,
    )
    print(
        f"  {result.num_facts} new facts "
        f"(MRR={result.mrr():.3f}) in {result.runtime_seconds:.2f}s; "
        f"link prediction alone could never propose these without "
        f"someone supplying the {result.candidates_generated:,} candidate queries."
    )


if __name__ == "__main__":
    main(*sys.argv[1:2])
