"""CHAI-style candidate-filtering rules (Borrego et al., 2019).

The related-work baseline (paper §5.1) prunes "illogical" triples from an
exhaustively generated candidate set using rules mined from the graph
itself.  Without an external ontology, the rules observable from a KG are
domain/range constraints and functionality:

* **Domain rule** — the subject must already appear as a subject of the
  relation somewhere in the graph.
* **Range rule** — the object must already appear as an object of the
  relation.
* **Functional rule** — if a relation is (near-)functional, subjects that
  already have an object for it are pruned.
"""

from __future__ import annotations

import numpy as np

from ..kg.triples import TripleSet

__all__ = ["RuleFilter"]


class RuleFilter:
    """Mines per-relation constraints from a triple set and applies them.

    Parameters
    ----------
    triples:
        The training graph from which constraints are mined.
    functional_threshold:
        A relation is treated as functional when its average number of
        objects per subject is below this value.
    """

    def __init__(self, triples: TripleSet, functional_threshold: float = 1.05) -> None:
        self.triples = triples
        self.functional_threshold = functional_threshold
        self._domains: dict[int, np.ndarray] = {}
        self._ranges: dict[int, np.ndarray] = {}
        self._functional: set[int] = set()
        self._subjects_with_object: dict[int, np.ndarray] = {}
        self._mine()

    def _mine(self) -> None:
        for relation in self.triples.unique_relations():
            rel_triples = self.triples.by_relation(int(relation))
            subjects = np.unique(rel_triples[:, 0])
            objects = np.unique(rel_triples[:, 2])
            self._domains[int(relation)] = subjects
            self._ranges[int(relation)] = objects
            objects_per_subject = len(rel_triples) / max(len(subjects), 1)
            if objects_per_subject <= self.functional_threshold:
                self._functional.add(int(relation))
                self._subjects_with_object[int(relation)] = subjects

    @property
    def functional_relations(self) -> set[int]:
        """Relations mined as (near-)functional."""
        return set(self._functional)

    def domain(self, relation: int) -> np.ndarray:
        """Entities allowed as subjects of ``relation``."""
        return self._domains.get(int(relation), np.zeros(0, dtype=np.int64))

    def range(self, relation: int) -> np.ndarray:
        """Entities allowed as objects of ``relation``."""
        return self._ranges.get(int(relation), np.zeros(0, dtype=np.int64))

    def accept_mask(self, candidates: np.ndarray) -> np.ndarray:
        """Boolean mask of candidates that pass every mined rule."""
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return np.zeros(0, dtype=bool)
        mask = np.ones(len(candidates), dtype=bool)
        for relation in np.unique(candidates[:, 1]):
            rows = candidates[:, 1] == relation
            rel = int(relation)
            mask[rows] &= np.isin(candidates[rows, 0], self.domain(rel))
            mask[rows] &= np.isin(candidates[rows, 2], self.range(rel))
            if rel in self._functional:
                saturated = self._subjects_with_object[rel]
                mask[rows] &= ~np.isin(candidates[rows, 0], saturated)
        return mask

    def filter(self, candidates: np.ndarray) -> np.ndarray:
        """Return only the candidates that pass every rule."""
        return np.asarray(candidates)[self.accept_mask(candidates)]
