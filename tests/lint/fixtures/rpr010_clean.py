"""RPR010 clean fixture: seeded RNG and ordered iteration throughout."""

import numpy as np


def train_model(config, seed):
    rng = np.random.default_rng(seed)
    pending = {3, 1, 2}
    return [rng.random() for _ in sorted(pending)]
