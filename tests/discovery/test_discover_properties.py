"""Hypothesis property tests for the discovery pipeline.

Random small graphs + an untrained (but deterministic) model: the
algorithm's structural invariants must hold for *any* input, not just the
fixtures.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import discover_facts
from repro.kg import KGProfile, encode_keys, generate_kg
from repro.kge import create_model

_MODEL_CACHE: dict[tuple, object] = {}
_GRAPH_CACHE: dict[tuple, object] = {}


def _graph(n, k, seed):
    key = (n, k, seed)
    if key not in _GRAPH_CACHE:
        _GRAPH_CACHE[key] = generate_kg(
            KGProfile(
                name="prop",
                num_entities=n,
                num_relations=k,
                num_triples=min(6 * n, n * n * k // 4),
                num_types=3,
                seed=seed,
            )
        )
    return _GRAPH_CACHE[key]


def _model(graph, seed):
    key = (graph.num_entities, graph.num_relations, seed)
    if key not in _MODEL_CACHE:
        model = create_model(
            "distmult",
            num_entities=graph.num_entities,
            num_relations=graph.num_relations,
            dim=8,
            seed=seed,
        )
        model.eval()
        _MODEL_CACHE[key] = model
    return _MODEL_CACHE[key]


graph_params = st.tuples(
    st.integers(12, 40),  # entities
    st.integers(1, 4),    # relations
    st.integers(0, 50),   # graph seed
)


@settings(max_examples=20, deadline=None)
@given(graph_params, st.integers(1, 30), st.integers(4, 80), st.integers(0, 5))
def test_invariants_hold_for_any_graph(params, top_n, max_candidates, seed):
    n, k, graph_seed = params
    graph = _graph(n, k, graph_seed)
    model = _model(graph, seed=1)
    result = discover_facts(
        model, graph, strategy="entity_frequency",
        top_n=top_n, max_candidates=max_candidates, seed=seed,
    )
    # Ranks are within [1, top_n] and aligned with facts.
    assert len(result.facts) == len(result.ranks)
    if result.num_facts:
        assert result.ranks.min() >= 1.0
        assert result.ranks.max() <= top_n
        # No discovered fact exists in the training graph.
        assert not graph.train.contains(result.facts).any()
        # No duplicates.
        keys = encode_keys(result.facts, n, k)
        assert len(np.unique(keys)) == len(keys)
        # Ids in range.
        assert result.facts[:, [0, 2]].max() < n
        assert result.facts[:, 1].max() < k
    # Budget respected per relation.
    for count in result.per_relation.values():
        assert count <= max_candidates
    # MRR within theoretical bounds.
    assert 0.0 <= result.mrr() <= 1.0


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100))
def test_determinism_over_seeds(seed):
    graph = _graph(25, 2, 7)
    model = _model(graph, seed=1)
    kwargs = dict(strategy="graph_degree", top_n=10, max_candidates=36, seed=seed)
    a = discover_facts(model, graph, **kwargs)
    b = discover_facts(model, graph, **kwargs)
    np.testing.assert_array_equal(a.facts, b.facts)
    np.testing.assert_array_equal(a.ranks, b.ranks)


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 30))
def test_top_n_monotonicity(top_n):
    """The discovered-fact set grows monotonically with top_n."""
    graph = _graph(25, 2, 7)
    model = _model(graph, seed=1)
    small = discover_facts(
        model, graph, strategy="entity_frequency",
        top_n=top_n, max_candidates=64, seed=3,
    )
    large = discover_facts(
        model, graph, strategy="entity_frequency",
        top_n=top_n + 5, max_candidates=64, seed=3,
    )
    small_keys = set(encode_keys(small.facts, 25, 2).tolist())
    large_keys = set(encode_keys(large.facts, 25, 2).tolist())
    assert small_keys <= large_keys
